package runtime

import (
	"math"

	"ensemblekit/internal/trace"
)

// The steady-state fast path answers fault-free runs without dispatching a
// single DES event: for the DIMES tier with the paper's synchronous
// no-buffering protocol, the event loop's timeline is a closed-form
// recurrence over per-step stage end times (the same structure as the
// core.SteadyState Eq.5–9 extraction, carried at full bit precision). The
// evaluator mirrors the engine's float arithmetic operation by operation —
// same groupings, same subtractions, same water-fill — so its trace is
// byte-identical to the DES trace. Whenever an assumption does not hold
// (fabric flows that would be rescheduled mid-flight, staggered remote
// readers) it bails and the caller falls back to the event loop.

// fastEligible is the static half of the eligibility test: configuration
// properties that rule the closed form out before looking at the dynamics.
func fastEligible(pl *simPlan, opts SimOptions) bool {
	if opts.tier() != TierDimes || opts.Topology != nil {
		return false
	}
	if opts.Jitter > 0 {
		return false
	}
	// A stage-timeout guard can interrupt a stage mid-wait; the closed
	// form assumes every stage runs clean.
	if opts.Resilience.StageTimeout > 0 {
		return false
	}
	// The recurrence encodes the synchronous protocol (one staging slot).
	if normSlots(opts.StagingSlots) != 1 {
		return false
	}
	return pl.es.Steps >= 1
}

// fpFlow mirrors one remote-read fabric flow for the water-fill.
type fpFlow struct {
	src, dst int
	bytes    int64
	rStart   float64
	rate     float64
	done     float64
}

// fastAssignRates mirrors Fabric.assignRates for a flat DIMES fabric (no
// topology, no degradation windows: capacity factor 1): max-min fair
// water-filling over per-node egress/ingress capacities with a per-flow
// cap, fixing bottlenecked flows in stable flow order. Operand order and
// groupings match the fabric bit for bit.
func fastAssignRates(n int, flows []*fpFlow, nic, cap float64, rem []float64, count []int) {
	nLinks := 2 * n
	factor := 1.0
	for i := 0; i < n; i++ {
		rem[i] = nic * factor
		rem[n+i] = nic * factor
	}
	for i := 0; i < nLinks; i++ {
		count[i] = 0
	}
	perFlowCap := cap * factor
	unfixed := append(make([]*fpFlow, 0, len(flows)), flows...)
	for _, fl := range unfixed {
		count[fl.src]++
		count[n+fl.dst]++
	}
	for len(unfixed) > 0 {
		share := math.Inf(1)
		for l := 0; l < nLinks; l++ {
			if count[l] > 0 {
				if s := rem[l] / float64(count[l]); s < share {
					share = s
				}
			}
		}
		if perFlowCap > 0 && perFlowCap <= share {
			for _, fl := range unfixed {
				fl.rate = perFlowCap
			}
			break
		}
		fixedAny := false
		w := 0
		for _, fl := range unfixed {
			bottlenecked := rem[fl.src]/float64(count[fl.src]) <= share+1e-9 ||
				rem[n+fl.dst]/float64(count[n+fl.dst]) <= share+1e-9
			if bottlenecked {
				fl.rate = share
				rem[fl.src] -= share
				count[fl.src]--
				rem[n+fl.dst] -= share
				count[n+fl.dst]--
				fixedAny = true
			} else {
				unfixed[w] = fl
				w++
			}
		}
		unfixed = unfixed[:w]
		if !fixedAny {
			for _, fl := range unfixed {
				fl.rate = share
			}
			break
		}
	}
}

// fastRun evaluates the plan's fault-free timeline in closed form. ok is
// false when any eligibility condition — static or dynamic — fails, in
// which case the caller must run the DES instead. A returned trace is
// byte-identical to what the event loop would have produced, with zero
// events dispatched. No obs events are emitted (there is no engine to
// emit them); attaching a recorder therefore still never changes results.
func fastRun(pl *simPlan, opts SimOptions) (*trace.EnsembleTrace, bool) {
	if !fastEligible(pl, opts) {
		return nil, false
	}
	m := len(pl.p.Members)
	n := pl.es.Steps
	model := pl.model
	clock := pl.spec.ClockHz
	latency := pl.spec.NICLatency

	totalRemote := 0
	for i := 0; i < m; i++ {
		totalRemote += pl.remoteAnas[i]
	}

	// Per-member constants, mirroring the DES stage arithmetic: with
	// jitter off, a compute stage's duration is ComputeTime*1*1 == the
	// assessed ComputeTime exactly; a DIMES write is one coalesced wait of
	// serialize+copy; a co-located read is one coalesced wait of
	// copy+deserialize; a remote read is a fabric transfer plus a
	// deserialize wait.
	bytesOf := make([]int64, m)
	wBase := make([]float64, m)
	coRead := make([]float64, m)
	deser := make([]float64, m)
	for i := 0; i < m; i++ {
		b := pl.es.Members[i].Sim.BytesPerStep
		bytesOf[i] = b
		wBase[i] = model.SerializeTime(b) + model.LocalCopyTime(b)
		coRead[i] = model.LocalCopyTime(b) + model.DeserializeTime(b)
		deser[i] = model.DeserializeTime(b)
	}

	// Timeline state. All stage end times are stored per step so the
	// record pass below can replicate the engine's exact subtractions.
	simSStart := make([][]float64, m) // S start (== previous wEnd)
	simISEnd := make([][]float64, m)  // I^S end (== W start)
	simWEnd := make([][]float64, m)   // W end (== announce time)
	rStartT := make([][][]float64, m) // per analysis: R start
	rEndT := make([][][]float64, m)   // per analysis: R end (token deposit)
	aEndT := make([][][]float64, m)   // per analysis: A end (== I^A start)
	iaEndT := make([][][]float64, m)  // per analysis: I^A end (== next R start)
	for i := 0; i < m; i++ {
		simSStart[i] = make([]float64, n)
		simISEnd[i] = make([]float64, n)
		simWEnd[i] = make([]float64, n)
		k := len(pl.anas[i])
		rStartT[i] = make([][]float64, k)
		rEndT[i] = make([][]float64, k)
		aEndT[i] = make([][]float64, k)
		iaEndT[i] = make([][]float64, k)
		for j := 0; j < k; j++ {
			rStartT[i][j] = make([]float64, n)
			rEndT[i][j] = make([]float64, n)
			aEndT[i][j] = make([]float64, n)
			iaEndT[i][j] = make([]float64, n)
		}
	}

	// Water-fill scratch (only allocated when remote flows exist).
	var flows []*fpFlow
	var rem []float64
	var count []int
	if totalRemote > 0 {
		flows = make([]*fpFlow, 0, totalRemote)
		rem = make([]float64, 2*pl.spec.Nodes)
		count = make([]int, 2*pl.spec.Nodes)
	}
	flowPool := make([]fpFlow, totalRemote)

	for s := 0; s < n; s++ {
		// Simulation side of every member first: S, I^S, W. The write end
		// is the announce time each of the member's readers synchronizes
		// on.
		for i := 0; i < m; i++ {
			sStart := 0.0
			if s > 0 {
				sStart = simWEnd[i][s-1]
			}
			sEnd := sStart + pl.assessSim[i].ComputeTime
			// I^S: wait for all K read-completion tokens of the previous
			// step — the engine's store wakes the getter at the offer
			// time, so the end is the max of the compute end and every
			// deposit time.
			isEnd := sEnd
			if s > 0 {
				for j := range pl.anas[i] {
					if t := rEndT[i][j][s-1]; t > isEnd {
						isEnd = t
					}
				}
			}
			simSStart[i][s] = sStart
			simISEnd[i][s] = isEnd
			simWEnd[i][s] = isEnd + wBase[i]
		}

		// Reader starts: the lead-in (step 0) parks on the first
		// announce; later steps resume from the previous I^A end, which
		// is max(previous A end, this step's announce).
		flows = flows[:0]
		fp := 0
		for i := 0; i < m; i++ {
			announce := simWEnd[i][s]
			for j := range pl.anas[i] {
				var rStart float64
				if s == 0 {
					rStart = announce
				} else {
					iaEnd := aEndT[i][j][s-1]
					if announce > iaEnd {
						iaEnd = announce
					}
					iaEndT[i][j][s-1] = iaEnd
					rStart = iaEnd
				}
				rStartT[i][j][s] = rStart
				if pl.anas[i][j].node != pl.sims[i].node && bytesOf[i] > 0 {
					fl := &flowPool[fp]
					fp++
					*fl = fpFlow{src: pl.sims[i].node, dst: pl.anas[i][j].node, bytes: bytesOf[i], rStart: rStart}
					flows = append(flows, fl)
				}
			}
		}

		// Remote flows: exact only when the fabric never reschedules a
		// flow mid-flight. A solo flow holds its rate for its whole life;
		// two or more must join at the same instant, carry the same
		// bytes, and receive the same rate, so every completion lands on
		// one timer with no intermediate re-balance. Anything else bails
		// to the DES.
		if len(flows) >= 2 {
			for _, fl := range flows[1:] {
				if fl.rStart != flows[0].rStart || fl.bytes != flows[0].bytes {
					return nil, false
				}
			}
		}
		if len(flows) > 0 {
			fastAssignRates(pl.spec.Nodes, flows, pl.spec.NICBandwidth, model.RemoteStageBW, rem, count)
			for _, fl := range flows {
				if fl.rate != flows[0].rate {
					return nil, false
				}
				tj := fl.rStart
				if latency > 0 {
					tj = fl.rStart + latency
				}
				fl.done = tj + float64(fl.bytes)/fl.rate
			}
		}

		// Reader completions: R end, token deposit, A end.
		fi := 0
		for i := 0; i < m; i++ {
			for j := range pl.anas[i] {
				rStart := rStartT[i][j][s]
				var rEnd float64
				if pl.anas[i][j].node != pl.sims[i].node && bytesOf[i] > 0 {
					rEnd = flows[fi].done + deser[i]
					fi++
				} else if pl.anas[i][j].node != pl.sims[i].node {
					// Zero-byte remote read: latency wait, no flow.
					rEnd = rStart
					if latency > 0 {
						rEnd = rStart + latency
					}
					rEnd = rEnd + deser[i]
				} else {
					rEnd = rStart + coRead[i]
				}
				rEndT[i][j][s] = rEnd
				aEndT[i][j][s] = rEnd + pl.assessAna[i][j].ComputeTime
				if s == n-1 {
					iaEndT[i][j][s] = aEndT[i][j][s]
				}
			}
		}
	}

	// Record pass: assemble the trace exactly as the stage loops do —
	// flat stage backing per component, the same subtractions for every
	// duration, the same counter expressions.
	tr := traceSkeleton(pl)
	for i := 0; i < m; i++ {
		simT := tr.Members[i].Simulation
		tenant := pl.sims[i].tenant
		stageBuf := make([]trace.StageRecord, 0, 3*n)
		simT.Steps = make([]trace.StepRecord, 0, n)
		simT.Start = 0
		for s := 0; s < n; s++ {
			rec := trace.StepRecord{Index: s}
			base := len(stageBuf)
			sDur := pl.assessSim[i].ComputeTime
			counters := model.ComputeCounters(tenant, pl.assessSim[i])
			counters.Cycles = sDur * clock * float64(tenant.Cores)
			stageBuf = append(stageBuf, trace.StageRecord{
				Stage: trace.StageS, Start: simSStart[i][s], Duration: sDur,
				Counters: counters,
			})
			isStart := simSStart[i][s] + sDur
			stageBuf = append(stageBuf, trace.StageRecord{
				Stage: trace.StageIS, Start: isStart, Duration: simISEnd[i][s] - isStart,
			})
			wDur := simWEnd[i][s] - simISEnd[i][s]
			stageBuf = append(stageBuf, trace.StageRecord{
				Stage: trace.StageW, Start: simISEnd[i][s], Duration: wDur,
				Counters: model.IOCounters(tenant, bytesOf[i], wDur),
			})
			rec.Stages = stageBuf[base:len(stageBuf):len(stageBuf)]
			simT.Steps = append(simT.Steps, rec)
		}
		simT.End = simWEnd[i][n-1]

		for j := range pl.anas[i] {
			anaT := tr.Members[i].Analyses[j]
			atenant := pl.anas[i][j].tenant
			abuf := make([]trace.StageRecord, 0, 3*n)
			anaT.Steps = make([]trace.StepRecord, 0, n)
			anaT.Start = rStartT[i][j][0]
			for s := 0; s < n; s++ {
				rec := trace.StepRecord{Index: s}
				base := len(abuf)
				rStart := rStartT[i][j][s]
				rDur := rEndT[i][j][s] - rStart
				abuf = append(abuf, trace.StageRecord{
					Stage: trace.StageR, Start: rStart, Duration: rDur,
					Counters: model.IOCounters(atenant, bytesOf[i], rDur),
				})
				aDur := pl.assessAna[i][j].ComputeTime
				counters := model.ComputeCounters(atenant, pl.assessAna[i][j])
				counters.Cycles = aDur * clock * float64(atenant.Cores)
				abuf = append(abuf, trace.StageRecord{
					Stage: trace.StageA, Start: rEndT[i][j][s], Duration: aDur,
					Counters: counters,
				})
				abuf = append(abuf, trace.StageRecord{
					Stage: trace.StageIA, Start: aEndT[i][j][s], Duration: iaEndT[i][j][s] - aEndT[i][j][s],
				})
				rec.Stages = abuf[base:len(abuf):len(abuf)]
				anaT.Steps = append(anaT.Steps, rec)
			}
			anaT.End = aEndT[i][j][n-1]
		}
	}
	if err := tr.Validate(); err != nil {
		return nil, false
	}
	return tr, true
}
