package runtime

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/faults"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/trace"
)

// traceRetries sums the retry annotations across every stage record.
func traceRetries(tr *trace.EnsembleTrace) int {
	n := 0
	for _, c := range tr.Components() {
		for _, step := range c.Steps {
			for _, st := range step.Stages {
				n += st.Retries
			}
		}
	}
	return n
}

func TestFaultPlanByteIdenticalTraces(t *testing.T) {
	// The acceptance bar of the fault subsystem: the same plan and seed
	// yield byte-identical traces across runs, even with every fault kind
	// active at once and recovery (retries, a crash-restart, a drop)
	// exercised.
	plan := &faults.Plan{
		Name: "everything-at-once",
		Seed: 11,
		Staging: []faults.StagingFault{
			{Tier: TierDimes, Rate: 0.1},
		},
		Network:    []faults.NetworkWindow{{Start: 20, End: 30, Factor: 0.5}},
		Crashes:    []faults.NodeCrash{{Node: 1, At: 35}},
		Stragglers: []faults.Straggler{{Component: "m0.*", Start: 5, End: 25, Factor: 1.3}},
	}
	opts := SimOptions{
		Seed:   3,
		Jitter: 0.02,
		Faults: plan,
		Resilience: Resilience{
			StagingRetries: 4,
			RetryBackoff:   0.02,
			RestartLimit:   1,
			RestartDelay:   0.5,
			Mode:           DropMember,
		},
	}
	run := func() []byte {
		tr := mustRunSim(t, placement.C15(), 12, opts)
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("same fault plan and seed produced different trace bytes")
	}
	// A different plan seed must perturb the injected faults.
	perturbed := *plan
	perturbed.Seed = 12
	opts2 := opts
	opts2.Faults = &perturbed
	tr2 := mustRunSim(t, placement.C15(), 12, opts2)
	var buf2 bytes.Buffer
	if err := tr2.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, buf2.Bytes()) {
		t.Error("different plan seeds should inject different faults")
	}
}

func TestRetryRecoversInjectedStagingFault(t *testing.T) {
	// A deterministic n-th-operation failure with a retry budget of one:
	// the run completes and exactly one retry is annotated in the trace.
	plan := &faults.Plan{Staging: []faults.StagingFault{{FailAtOp: 3}}}
	tr := mustRunSim(t, placement.Cf(), 6, SimOptions{
		Faults:     plan,
		Resilience: Resilience{StagingRetries: 1, RetryBackoff: 0.01},
	})
	if got := traceRetries(tr); got != 1 {
		t.Errorf("trace records %d retries, want 1", got)
	}
	// Without a budget the same plan aborts the run (historical fail-fast).
	_, err := RunSimulated(cluster.Cori(3), placement.Cf(),
		SpecForPlacement(placement.Cf(), 6), SimOptions{Faults: plan})
	if err == nil || !strings.Contains(err.Error(), "injected") {
		t.Errorf("zero retry budget should surface the injection, got %v", err)
	}
}

func TestCrashRestartResumesStage(t *testing.T) {
	// A node crash with a restart budget: the run completes, the restart
	// is annotated, and the recovery delay shows up in the makespan.
	crash := &faults.Plan{Crashes: []faults.NodeCrash{{Node: 0, At: 30}}}
	base := mustRunSim(t, placement.C15(), 10, SimOptions{})
	tr := mustRunSim(t, placement.C15(), 10, SimOptions{
		Faults:     crash,
		Resilience: Resilience{RestartLimit: 1, RestartDelay: 2},
	})
	restarts := 0
	for _, c := range tr.Components() {
		restarts += c.Restarts
	}
	if restarts == 0 {
		t.Error("no component recorded a crash-restart")
	}
	if len(tr.DroppedMembers()) != 0 {
		t.Errorf("restart budget should absorb the crash, dropped %v", tr.DroppedMembers())
	}
	if tr.Makespan() <= base.Makespan() {
		t.Errorf("crash recovery (%v) should cost makespan over the baseline (%v)",
			tr.Makespan(), base.Makespan())
	}
	for _, m := range tr.Members {
		if got := len(m.Simulation.Steps); got != 10 {
			t.Errorf("member %d completed %d steps, want 10", m.Index, got)
		}
	}
}

func TestCrashDropMember(t *testing.T) {
	// No restart budget + drop-member mode: the crashed member's whole
	// coupling is dropped and annotated; the survivor runs to completion.
	crash := &faults.Plan{Crashes: []faults.NodeCrash{{Node: 1, At: 30}}}
	tr := mustRunSim(t, placement.C15(), 10, SimOptions{
		Faults:     crash,
		Resilience: Resilience{Mode: DropMember},
	})
	dropped := tr.DroppedMembers()
	if len(dropped) != 1 || dropped[0] != 1 {
		t.Fatalf("dropped members = %v, want [1]", dropped)
	}
	if !tr.Members[1].Dropped() || tr.Members[1].Simulation.Dropped == "" {
		t.Error("member 1 should carry the dropped annotation")
	}
	survivors := tr.SurvivingMembers()
	if len(survivors) != 1 || survivors[0].Index != 0 {
		t.Fatalf("surviving members = %d, want member 0 only", len(survivors))
	}
	if got := len(survivors[0].Simulation.Steps); got != 10 {
		t.Errorf("survivor completed %d steps, want 10", got)
	}
	// The dropped member's partial trace ends near the crash time.
	if mk := tr.Members[1].Makespan(); mk > 31 {
		t.Errorf("dropped member kept running past the crash: makespan %v", mk)
	}
}

func TestCrashFailFast(t *testing.T) {
	// The default mode preserves the historical contract: the ensemble
	// aborts with an error and a partial trace.
	crash := &faults.Plan{Crashes: []faults.NodeCrash{{Node: 1, At: 30}}}
	tr, err := RunSimulated(cluster.Cori(3), placement.C15(),
		SpecForPlacement(placement.C15(), 10), SimOptions{Faults: crash})
	if err == nil || !strings.Contains(err.Error(), "crash") {
		t.Fatalf("fail-fast crash should error, got %v", err)
	}
	if tr == nil {
		t.Fatal("partial trace should be returned on failure")
	}
}

func TestStragglerDilatesCompute(t *testing.T) {
	// A straggler window makes the matching component's compute stages
	// slower while active, and leaves other components alone.
	plan := &faults.Plan{Stragglers: []faults.Straggler{
		{Component: "m0.sim", Factor: 2},
	}}
	base := mustRunSim(t, placement.Cf(), 6, SimOptions{})
	slow := mustRunSim(t, placement.Cf(), 6, SimOptions{Faults: plan})
	sBase := base.Members[0].Simulation.Steps[2].StageDuration(trace.StageS)
	sSlow := slow.Members[0].Simulation.Steps[2].StageDuration(trace.StageS)
	if sSlow < 1.9*sBase {
		t.Errorf("straggler factor 2 should double S: %v vs %v", sSlow, sBase)
	}
	aBase := base.Members[0].Analyses[0].Steps[2].StageDuration(trace.StageA)
	aSlow := slow.Members[0].Analyses[0].Steps[2].StageDuration(trace.StageA)
	if aSlow != aBase {
		t.Errorf("straggler on m0.sim should not touch the analysis: %v vs %v", aSlow, aBase)
	}
}

func TestNetworkDegradationSlowsRemoteRead(t *testing.T) {
	// A bandwidth-degradation window lengthens the remote R stage of the
	// co-location-free configuration while it is active.
	plan := &faults.Plan{Network: []faults.NetworkWindow{
		{Start: 0, End: 1e6, Factor: 0.1},
	}}
	base := mustRunSim(t, placement.Cf(), 6, SimOptions{})
	slow := mustRunSim(t, placement.Cf(), 6, SimOptions{Faults: plan})
	rBase := base.Members[0].Analyses[0].Steps[2].StageDuration(trace.StageR)
	rSlow := slow.Members[0].Analyses[0].Steps[2].StageDuration(trace.StageR)
	if rSlow <= rBase {
		t.Errorf("degraded fabric should slow the remote read: %v vs %v", rSlow, rBase)
	}
	if slow.Makespan() <= base.Makespan() {
		t.Errorf("degraded fabric should cost makespan: %v vs %v", slow.Makespan(), base.Makespan())
	}
}

func TestStageTimeoutExhaustsBudget(t *testing.T) {
	// An absurdly small stage timeout makes every staging attempt time
	// out; once the retry budget is gone the run fails with a partial
	// trace mentioning the timeout.
	tr, err := RunSimulated(cluster.Cori(3), placement.Cf(),
		SpecForPlacement(placement.Cf(), 6), SimOptions{
			Resilience: Resilience{StagingRetries: 2, StageTimeout: 1e-9},
		})
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("timeout exhaustion should surface, got %v", err)
	}
	if tr == nil {
		t.Fatal("partial trace should be returned on failure")
	}
}

func TestResilienceValidation(t *testing.T) {
	cases := []Resilience{
		{StagingRetries: -1},
		{RetryBackoff: -1},
		{StageTimeout: -1},
		{RestartLimit: -1},
		{RestartDelay: -1},
		{Mode: DegradationMode(9)},
	}
	for i, res := range cases {
		if err := res.Validate(); err == nil {
			t.Errorf("case %d: invalid policy %+v should fail validation", i, res)
		}
		if _, err := RunSimulated(cluster.Cori(3), placement.Cf(),
			SpecForPlacement(placement.Cf(), 4), SimOptions{Resilience: res}); err == nil {
			t.Errorf("case %d: RunSimulated should reject the policy", i)
		}
	}
	if _, err := ParseDegradationMode("drop-member"); err != nil {
		t.Errorf("drop-member should parse: %v", err)
	}
	if _, err := ParseDegradationMode("bogus"); err == nil {
		t.Error("bogus mode should fail to parse")
	}
}

// --- real backend ---

func TestRealBackendFaultRetry(t *testing.T) {
	// The real backend honours the same plan format: an injected staging
	// failure on the "mem" tier is retried and annotated.
	opts := smallRealOptions()
	opts.Faults = &faults.Plan{Staging: []faults.StagingFault{{Tier: "mem", FailAtOp: 1}}}
	opts.Resilience = Resilience{StagingRetries: 1}
	tr, err := RunReal(placement.C15(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := traceRetries(tr); got != 1 {
		t.Errorf("trace records %d retries, want 1", got)
	}
}

func TestRealBackendDropMember(t *testing.T) {
	// An unrecovered member-scoped failure under drop-member completes
	// the run with the failed member annotated and the rest intact.
	opts := smallRealOptions()
	opts.Faults = &faults.Plan{Staging: []faults.StagingFault{{Tier: "mem", FailAtOp: 1}}}
	opts.Resilience = Resilience{Mode: DropMember}
	tr, err := RunReal(placement.C15(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tr.DroppedMembers()); got != 1 {
		t.Fatalf("dropped members = %d, want 1", got)
	}
	for _, m := range tr.SurvivingMembers() {
		if got := len(m.Simulation.Steps); got != 3 {
			t.Errorf("survivor %d completed %d steps, want 3", m.Index, got)
		}
	}
}

func TestRealBackendTimeoutPartialTrace(t *testing.T) {
	// RunReal returns whatever was recorded up to the timeout alongside
	// the error, so aborted runs remain inspectable.
	opts := smallRealOptions()
	opts.Timeout = 50 * time.Millisecond
	opts.Steps = 1000
	tr, err := RunReal(placement.Cf(), opts)
	if err == nil {
		t.Fatal("timeout should abort the real run")
	}
	if tr == nil {
		t.Fatal("partial trace should be returned on timeout")
	}
	if len(tr.Members) != 1 || len(tr.Members[0].Analyses) != 1 {
		t.Errorf("partial trace should keep the ensemble shape")
	}
	// A member-scoped drop must not swallow the global timeout either.
	opts.Resilience = Resilience{Mode: DropMember}
	if _, err := RunReal(placement.Cf(), opts); err == nil {
		t.Error("global timeout must error even in drop-member mode")
	}
}
