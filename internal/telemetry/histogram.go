package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefBuckets are the default latency buckets, in seconds: half a
// millisecond to one minute on a roughly ×2.5 ladder — the same shape the
// Prometheus client library ships, extended upward because campaign jobs
// routinely run for tens of seconds.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// normalizeBuckets validates and sorts bucket bounds, substituting
// DefBuckets for an empty slice and dropping a trailing +Inf (the
// implicit overflow bucket provides it).
func normalizeBuckets(bounds []float64) []float64 {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	out := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if !math.IsInf(b, +1) && !math.IsNaN(b) {
			out = append(out, b)
		}
	}
	sort.Float64s(out)
	return out
}

// Histogram is a fixed-bucket latency histogram: per-bucket atomic
// counts, a running sum, and quantile estimation by linear interpolation
// within the owning bucket. Observations and reads are lock-free; a read
// concurrent with writes sees a slightly torn but monotonically
// consistent snapshot, which is all a scrape needs.
type Histogram struct {
	bounds []float64       // finite upper bounds, ascending
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Histogram registers (or finds) an unlabeled histogram. A nil or empty
// buckets slice uses DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeHistogram, nil, normalizeBuckets(buckets)).cell(nil).(*Histogram)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; most latency observations
	// land in low buckets, but the ladder is short either way.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sum, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot copies the per-bucket counts (non-cumulative).
func (h *Histogram) snapshot() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution by locating the bucket holding the target rank and
// interpolating linearly inside it — the same estimate a Prometheus
// histogram_quantile() yields from the exposition. Observations beyond
// the last finite bucket clamp to that bound. Returns NaN before any
// observation.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	counts := h.snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	lo := 0.0
	for i, bound := range h.bounds {
		c := float64(counts[i])
		if cum+c >= rank && c > 0 {
			return lo + (bound-lo)*(rank-cum)/c
		}
		cum += c
		lo = bound
	}
	// Rank falls in the +Inf bucket: the best finite answer is the last
	// bound (or the mean when there are no finite buckets at all).
	if len(h.bounds) == 0 {
		return h.Sum() / float64(total)
	}
	return h.bounds[len(h.bounds)-1]
}
