package tracing

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestTracer() *Tracer { return NewTracer(NewStore(0, 0)) }

func TestTraceparentRoundTrip(t *testing.T) {
	tr := newTestTracer()
	_, s := tr.StartSpan(context.Background(), "root", "server")
	h := s.Context().Traceparent()
	sc, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", h, err)
	}
	if sc != s.Context() {
		t.Fatalf("round trip: got %+v want %+v", sc, s.Context())
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-abc",
		"00-00000000000000000000000000000000-0000000000000000-01", // all-zero IDs
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // version ff
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7x01", // bad separator
		"00-ZZf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // non-hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01extra",
	}
	for _, h := range bad {
		if _, err := ParseTraceparent(h); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", h)
		}
	}
	// A longer header with a valid continuation separator parses.
	ok := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-anything"
	if _, err := ParseTraceparent(ok); err != nil {
		t.Errorf("ParseTraceparent(%q): %v", ok, err)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.StartSpan(context.Background(), "x", "server")
	if s != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("nil tracer polluted the context")
	}
	// All span methods are no-ops on nil.
	s.SetAttr(String("k", "v"))
	s.SetError(context.Canceled)
	s.End()
	if s.TraceID() != "" || s.SpanID() != "" {
		t.Fatal("nil span has non-empty IDs")
	}
	if s.Recording() {
		t.Fatal("nil span claims to record")
	}
	if tr.SpanAt(SpanContext{}, "x", "k", time.Now(), time.Now()).IsValid() {
		t.Fatal("nil tracer SpanAt returned a valid context")
	}
	var st *Store
	if st.Spans(TraceID{1}) != nil || st.Len() != 0 || st.Dropped() != 0 {
		t.Fatal("nil store not inert")
	}
}

func TestSpanParenting(t *testing.T) {
	tr := newTestTracer()
	ctx, root := tr.StartSpan(context.Background(), "root", "server")
	ctx2, child := tr.StartSpan(ctx, "child", "campaign")
	_, grand := tr.StartSpan(ctx2, "grand", "job")

	if child.Context().TraceID != root.Context().TraceID {
		t.Fatal("child switched traces")
	}
	if grand.Context().TraceID != root.Context().TraceID {
		t.Fatal("grandchild switched traces")
	}
	grand.End()
	child.End()
	root.End()

	spans := tr.Store().Spans(root.Context().TraceID)
	if len(spans) != 3 {
		t.Fatalf("stored %d spans, want 3", len(spans))
	}
	byName := map[string]SpanData{}
	for _, d := range spans {
		byName[d.Name] = d
	}
	if byName["child"].Parent != root.Context().SpanID {
		t.Fatal("child not parented to root")
	}
	if byName["grand"].Parent != child.Context().SpanID {
		t.Fatal("grandchild not parented to child")
	}
	if byName["root"].Parent.IsValid() {
		t.Fatal("root has a parent")
	}
	if got := Depth(spans); got != 3 {
		t.Fatalf("Depth = %d, want 3", got)
	}
}

func TestRemoteParent(t *testing.T) {
	tr := newTestTracer()
	remote, err := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if err != nil {
		t.Fatal(err)
	}
	ctx := ContextWithRemote(context.Background(), remote)
	_, s := tr.StartSpan(ctx, "server", "server")
	if s.Context().TraceID != remote.TraceID {
		t.Fatal("remote trace ID not adopted")
	}
	s.End()
	spans := tr.Store().Spans(remote.TraceID)
	if len(spans) != 1 || spans[0].Parent != remote.SpanID {
		t.Fatalf("span not parented to remote context: %+v", spans)
	}
}

func TestEndIdempotentAndOrdering(t *testing.T) {
	tr := newTestTracer()
	_, s := tr.StartSpan(context.Background(), "x", "job")
	s.SetError(context.DeadlineExceeded)
	s.End()
	s.End() // second End must not double-store
	spans := tr.Store().Spans(s.Context().TraceID)
	if len(spans) != 1 {
		t.Fatalf("stored %d spans, want 1", len(spans))
	}
	if !spans[0].IsError || spans[0].Status != context.DeadlineExceeded.Error() {
		t.Fatalf("error status lost: %+v", spans[0])
	}
	if spans[0].End.Before(spans[0].Start) {
		t.Fatal("end before start")
	}
}

func TestSpanAtBridgesUnderParent(t *testing.T) {
	tr := newTestTracer()
	_, root := tr.StartSpan(context.Background(), "exec", "execute")
	t0 := root.Context()
	base := time.Unix(100, 0)
	comp := tr.SpanAt(t0, "sim[0]", "component", base, base.Add(2*time.Second))
	tr.SpanAt(comp, "S", "stage:S", base, base.Add(time.Second))
	root.End()
	spans := tr.Store().Spans(t0.TraceID)
	if len(spans) != 3 {
		t.Fatalf("stored %d spans, want 3", len(spans))
	}
	if got := Depth(spans); got != 3 {
		t.Fatalf("Depth = %d, want 3", got)
	}
}

func TestStoreBounds(t *testing.T) {
	st := NewStore(2, 3)
	tr := NewTracer(st)
	var traces []TraceID
	for i := 0; i < 3; i++ {
		_, s := tr.StartSpan(context.Background(), "root", "server")
		traces = append(traces, s.Context().TraceID)
		for k := 0; k < 5; k++ {
			tr.SpanAt(s.Context(), "c", "job", time.Unix(0, 0), time.Unix(1, 0))
		}
		s.End()
	}
	if st.Len() != 2 {
		t.Fatalf("store retained %d traces, want 2 (FIFO bound)", st.Len())
	}
	if st.Spans(traces[0]) != nil {
		t.Fatal("oldest trace not evicted")
	}
	for _, id := range traces[1:] {
		if n := len(st.Spans(id)); n != 3 {
			t.Fatalf("trace retained %d spans, want 3 (per-trace cap)", n)
		}
	}
	if st.Dropped() == 0 {
		t.Fatal("dropped counter not advanced")
	}
}

func TestStoreConcurrent(t *testing.T) {
	tr := newTestTracer()
	_, root := tr.StartSpan(context.Background(), "root", "server")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, s := tr.StartSpan(ContextWithSpan(context.Background(), root), "w", "job")
				s.SetAttr(Int("i", i))
				s.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if n := len(tr.Store().Spans(root.Context().TraceID)); n != 8*200+1 {
		t.Fatalf("stored %d spans, want %d", n, 8*200+1)
	}
}

func TestIDUniqueness(t *testing.T) {
	tr := newTestTracer()
	seen := make(map[SpanID]bool)
	for i := 0; i < 10000; i++ {
		id := tr.newSpanID()
		if !id.IsValid() {
			t.Fatal("generated zero span ID")
		}
		if seen[id] {
			t.Fatalf("duplicate span ID after %d draws", i)
		}
		seen[id] = true
	}
}

func TestOTLPRoundTrip(t *testing.T) {
	tr := newTestTracer()
	ctx, root := tr.StartSpan(context.Background(), "req", "server", String("http.route", "/v1/campaigns"))
	_, child := tr.StartSpan(ctx, "job", "job", Int("priority", 5), Float("objective", 1.25), Bool("cacheHit", false))
	child.SetError(context.Canceled)
	child.End()
	root.End()

	spans := tr.Store().Spans(root.Context().TraceID)
	var buf bytes.Buffer
	if err := WriteOTLP(&buf, "ensembled", spans); err != nil {
		t.Fatalf("WriteOTLP: %v", err)
	}
	if !strings.Contains(buf.String(), `"resourceSpans"`) || !strings.Contains(buf.String(), `"ensembled"`) {
		t.Fatalf("OTLP document missing envelope:\n%s", buf.String())
	}

	got, err := ReadOTLP(&buf)
	if err != nil {
		t.Fatalf("ReadOTLP: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("round trip returned %d spans, want 2", len(got))
	}
	byName := map[string]SpanData{}
	for _, d := range got {
		byName[d.Name] = d
	}
	j := byName["job"]
	if j.Kind != "job" || j.Parent != root.Context().SpanID || !j.IsError {
		t.Fatalf("job span mangled: %+v", j)
	}
	if j.Status != context.Canceled.Error() {
		t.Fatalf("status message lost: %q", j.Status)
	}
	var prio, obj, hit bool
	for _, a := range j.Attrs {
		switch a.Key {
		case "priority":
			prio = a.Value == int64(5)
		case "objective":
			obj = a.Value == 1.25
		case "cacheHit":
			hit = a.Value == false
		}
	}
	if !prio || !obj || !hit {
		t.Fatalf("attribute values mangled: %+v", j.Attrs)
	}
	r := byName["req"]
	if r.Kind != "server" || r.Parent.IsValid() {
		t.Fatalf("root span mangled: %+v", r)
	}
	// Times survive at nanosecond resolution.
	if !r.Start.Equal(byName["req"].Start) || r.End.Sub(r.Start) < 0 {
		t.Fatal("timestamps mangled")
	}
}

func TestWriteOTLPDeterministic(t *testing.T) {
	tr := newTestTracer()
	_, root := tr.StartSpan(context.Background(), "root", "server")
	base := time.Unix(50, 0)
	for i := 0; i < 5; i++ {
		tr.SpanAt(root.Context(), "c", "job", base.Add(time.Duration(i)*time.Second), base.Add(time.Duration(i+1)*time.Second))
	}
	root.End()
	spans := tr.Store().Spans(root.Context().TraceID)
	var a, b bytes.Buffer
	if err := WriteOTLP(&a, "svc", spans); err != nil {
		t.Fatal(err)
	}
	if err := WriteOTLP(&b, "svc", spans); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteOTLP not deterministic for fixed input")
	}
}
