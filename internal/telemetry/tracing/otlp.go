package tracing

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// The OTLP/JSON wire shape (resourceSpans → scopeSpans → spans), so the
// /v1/jobs/{id}/spans payload loads directly into any OpenTelemetry
// consumer. Timestamps are decimal strings of Unix nanos, IDs are hex,
// per the OTLP JSON mapping. Our span-kind taxonomy ("stage:S",
// "dtl:put", ...) has no OTLP enum slot, so it rides in the "ek.kind"
// attribute; the enum kind is SERVER for the inbound request span and
// INTERNAL otherwise.

const kindAttrKey = "ek.kind"

type otlpDoc struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpKV `json:"attributes"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpSpan struct {
	TraceID           string      `json:"traceId"`
	SpanID            string      `json:"spanId"`
	ParentSpanID      string      `json:"parentSpanId,omitempty"`
	Name              string      `json:"name"`
	Kind              int         `json:"kind"`
	StartTimeUnixNano string      `json:"startTimeUnixNano"`
	EndTimeUnixNano   string      `json:"endTimeUnixNano"`
	Attributes        []otlpKV    `json:"attributes,omitempty"`
	Status            *otlpStatus `json:"status,omitempty"`
}

type otlpStatus struct {
	Code    int    `json:"code"` // 2 = STATUS_CODE_ERROR
	Message string `json:"message,omitempty"`
}

type otlpKV struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

type otlpValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	IntValue    *string  `json:"intValue,omitempty"` // OTLP JSON encodes int64 as string
	DoubleValue *float64 `json:"doubleValue,omitempty"`
	BoolValue   *bool    `json:"boolValue,omitempty"`
}

func toOTLPValue(v any) otlpValue {
	switch x := v.(type) {
	case string:
		return otlpValue{StringValue: &x}
	case bool:
		return otlpValue{BoolValue: &x}
	case int:
		s := strconv.FormatInt(int64(x), 10)
		return otlpValue{IntValue: &s}
	case int64:
		s := strconv.FormatInt(x, 10)
		return otlpValue{IntValue: &s}
	case float64:
		return otlpValue{DoubleValue: &x}
	default:
		s := fmt.Sprint(v)
		return otlpValue{StringValue: &s}
	}
}

func fromOTLPValue(v otlpValue) any {
	switch {
	case v.StringValue != nil:
		return *v.StringValue
	case v.IntValue != nil:
		n, err := strconv.ParseInt(*v.IntValue, 10, 64)
		if err != nil {
			return *v.IntValue
		}
		return n
	case v.DoubleValue != nil:
		return *v.DoubleValue
	case v.BoolValue != nil:
		return *v.BoolValue
	}
	return nil
}

// WriteOTLP writes the spans as one OTLP/JSON document under a single
// resource named service. Spans are emitted in start-time order (span
// ID as tiebreak) so the document is deterministic for a fixed input.
func WriteOTLP(w io.Writer, service string, spans []SpanData) error {
	sorted := append([]SpanData(nil), spans...)
	sort.Slice(sorted, func(i, k int) bool {
		if !sorted[i].Start.Equal(sorted[k].Start) {
			return sorted[i].Start.Before(sorted[k].Start)
		}
		return sorted[i].SpanID.String() < sorted[k].SpanID.String()
	})
	out := make([]otlpSpan, 0, len(sorted))
	for _, d := range sorted {
		os := otlpSpan{
			TraceID:           d.TraceID.String(),
			SpanID:            d.SpanID.String(),
			Name:              d.Name,
			Kind:              1, // SPAN_KIND_INTERNAL
			StartTimeUnixNano: strconv.FormatInt(d.Start.UnixNano(), 10),
			EndTimeUnixNano:   strconv.FormatInt(d.End.UnixNano(), 10),
		}
		if d.Parent.IsValid() {
			os.ParentSpanID = d.Parent.String()
		}
		if d.Kind == "server" {
			os.Kind = 2 // SPAN_KIND_SERVER
		}
		if d.Kind != "" {
			os.Attributes = append(os.Attributes, otlpKV{Key: kindAttrKey, Value: toOTLPValue(d.Kind)})
		}
		for _, a := range d.Attrs {
			os.Attributes = append(os.Attributes, otlpKV{Key: a.Key, Value: toOTLPValue(a.Value)})
		}
		if d.IsError {
			os.Status = &otlpStatus{Code: 2, Message: d.Status}
		}
		out = append(out, os)
	}
	svc := service
	doc := otlpDoc{ResourceSpans: []otlpResourceSpans{{
		Resource: otlpResource{Attributes: []otlpKV{{Key: "service.name", Value: otlpValue{StringValue: &svc}}}},
		ScopeSpans: []otlpScopeSpans{{
			Scope: otlpScope{Name: "ensemblekit/internal/telemetry/tracing"},
			Spans: out,
		}},
	}}}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadOTLP parses an OTLP/JSON document written by WriteOTLP back into
// SpanData (traceview consumes span files offline). It tolerates
// foreign documents: unknown fields are ignored, and spans missing the
// ek.kind attribute get an empty Kind.
func ReadOTLP(r io.Reader) ([]SpanData, error) {
	var doc otlpDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("tracing: decode OTLP: %w", err)
	}
	var spans []SpanData
	for _, rs := range doc.ResourceSpans {
		for _, ss := range rs.ScopeSpans {
			for _, os := range ss.Spans {
				d, err := fromOTLPSpan(os)
				if err != nil {
					return nil, err
				}
				spans = append(spans, d)
			}
		}
	}
	return spans, nil
}

func fromOTLPSpan(os otlpSpan) (SpanData, error) {
	var d SpanData
	if err := decodeHexID(os.TraceID, d.TraceID[:]); err != nil {
		return d, fmt.Errorf("tracing: span %q traceId: %w", os.Name, err)
	}
	if err := decodeHexID(os.SpanID, d.SpanID[:]); err != nil {
		return d, fmt.Errorf("tracing: span %q spanId: %w", os.Name, err)
	}
	if os.ParentSpanID != "" {
		if err := decodeHexID(os.ParentSpanID, d.Parent[:]); err != nil {
			return d, fmt.Errorf("tracing: span %q parentSpanId: %w", os.Name, err)
		}
	}
	d.Name = os.Name
	start, err := strconv.ParseInt(os.StartTimeUnixNano, 10, 64)
	if err != nil {
		return d, fmt.Errorf("tracing: span %q start: %w", os.Name, err)
	}
	end, err := strconv.ParseInt(os.EndTimeUnixNano, 10, 64)
	if err != nil {
		return d, fmt.Errorf("tracing: span %q end: %w", os.Name, err)
	}
	d.Start = time.Unix(0, start).UTC()
	d.End = time.Unix(0, end).UTC()
	for _, kv := range os.Attributes {
		if kv.Key == kindAttrKey {
			if s, ok := fromOTLPValue(kv.Value).(string); ok {
				d.Kind = s
			}
			continue
		}
		d.Attrs = append(d.Attrs, Attr{Key: kv.Key, Value: fromOTLPValue(kv.Value)})
	}
	if os.Status != nil && os.Status.Code == 2 {
		d.IsError = true
		d.Status = os.Status.Message
	}
	return d, nil
}

func decodeHexID(s string, dst []byte) error {
	if len(s) != 2*len(dst) {
		return fmt.Errorf("want %d hex digits, got %d", 2*len(dst), len(s))
	}
	if _, err := hex.Decode(dst, []byte(s)); err != nil {
		return fmt.Errorf("bad hex %q: %w", s, err)
	}
	return nil
}
