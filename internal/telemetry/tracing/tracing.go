// Package tracing is a dependency-free (stdlib-only) distributed-tracing
// core: 128-bit trace IDs, 64-bit span IDs, W3C traceparent propagation,
// an in-process span store with OTLP-shaped JSON export, and per-trace
// critical-path extraction.
//
// Like the rest of the telemetry tier, the package is nil-safe by
// design: every method on a nil *Tracer or nil *Span returns
// immediately (StartSpan on a nil tracer hands back a nil span whose
// End is a no-op), so instrumented code threads handles unconditionally
// and an untraced service pays one branch per call site — see
// BenchmarkTracingOverhead at the repository root.
//
// The package deliberately imports nothing from the rest of the module:
// internal/telemetry and internal/obs both build on top of it, so any
// internal import here would close a cycle.
package tracing

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a 128-bit trace identifier (W3C trace-context trace-id).
type TraceID [16]byte

// IsValid reports whether the ID is non-zero (the all-zero ID is the
// W3C "invalid" sentinel).
func (t TraceID) IsValid() bool { return t != TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID is a 64-bit span identifier (W3C trace-context parent-id).
type SpanID [8]byte

// IsValid reports whether the ID is non-zero.
func (s SpanID) IsValid() bool { return s != SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagated identity of a span: which trace it
// belongs to and which span is the direct parent of anything started
// under it.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// IsValid reports whether both IDs are non-zero.
func (sc SpanContext) IsValid() bool { return sc.TraceID.IsValid() && sc.SpanID.IsValid() }

// Traceparent renders the context as a W3C traceparent header value
// (version 00, sampled flag set).
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-01"
}

// ParseTraceparent parses a W3C traceparent header value. It accepts
// any version byte except "ff", requires the version-00 field layout,
// and rejects all-zero IDs, per the trace-context spec.
func ParseTraceparent(h string) (SpanContext, error) {
	var sc SpanContext
	if len(h) < 55 {
		return sc, fmt.Errorf("traceparent too short: %d bytes", len(h))
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return sc, fmt.Errorf("traceparent malformed: %q", h)
	}
	if h[:2] == "ff" {
		return sc, fmt.Errorf("traceparent version ff is invalid")
	}
	if len(h) > 55 && h[55] != '-' {
		return sc, fmt.Errorf("traceparent malformed after flags: %q", h)
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(h[3:35])); err != nil {
		return sc, fmt.Errorf("traceparent trace-id: %w", err)
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(h[36:52])); err != nil {
		return sc, fmt.Errorf("traceparent parent-id: %w", err)
	}
	if _, err := hex.Decode(make([]byte, 1), []byte(h[53:55])); err != nil {
		return sc, fmt.Errorf("traceparent flags: %w", err)
	}
	if !sc.IsValid() {
		return sc, fmt.Errorf("traceparent has all-zero IDs")
	}
	return sc, nil
}

// Attr is one span attribute. Values are JSON-encoded on export;
// strings, bools, ints, and floats render as native OTLP value kinds,
// anything else is stringified.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: int64(v)} }

// Int64 builds an integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a bool attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Span is one live span. All methods are safe on a nil receiver and
// safe for concurrent use; End is idempotent (the first call wins).
type Span struct {
	tracer *Tracer
	sc     SpanContext
	parent SpanID

	mu      sync.Mutex
	name    string
	kind    string
	start   time.Time
	end     time.Time // zero until End
	attrs   []Attr
	status  string // "" = unset/ok, otherwise error message
	isError bool
}

// Context returns the span's propagation context (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceID returns the span's trace ID as hex, or "" for nil spans.
// The string form feeds log correlation without importing this package
// into the logger.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.sc.TraceID.String()
}

// SpanID returns the span's own ID as hex, or "" for nil spans.
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.sc.SpanID.String()
}

// Recording reports whether operations on the span will be retained.
func (s *Span) Recording() bool { return s != nil }

// SetAttr attaches attributes to the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// SetError marks the span failed with the error's message. A nil error
// is ignored, so call sites can pass their return error unconditionally.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.isError = true
	s.status = err.Error()
	s.mu.Unlock()
}

// SetStatus marks the span failed (or not) with an explicit message.
func (s *Span) SetStatus(isError bool, msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.isError = isError
	s.status = msg
	s.mu.Unlock()
}

// End completes the span at the current wall clock and hands it to the
// tracer's store. Only the first call has effect.
func (s *Span) End() { s.EndAt(time.Time{}) }

// EndAt completes the span at a caller-chosen instant (zero means now).
func (s *Span) EndAt(at time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.end.IsZero() {
		s.mu.Unlock()
		return
	}
	if at.IsZero() {
		at = time.Now()
	}
	if at.Before(s.start) {
		at = s.start
	}
	s.end = at
	data := s.snapshotLocked()
	s.mu.Unlock()
	s.tracer.store.add(data)
}

// snapshotLocked copies the span into its exported form; s.mu held.
func (s *Span) snapshotLocked() SpanData {
	return SpanData{
		TraceID: s.sc.TraceID,
		SpanID:  s.sc.SpanID,
		Parent:  s.parent,
		Name:    s.name,
		Kind:    s.kind,
		Start:   s.start,
		End:     s.end,
		Attrs:   append([]Attr(nil), s.attrs...),
		IsError: s.isError,
		Status:  s.status,
	}
}

// SpanData is a completed span as stored and exported.
type SpanData struct {
	TraceID TraceID
	SpanID  SpanID
	Parent  SpanID // zero for root spans
	Name    string
	Kind    string // span taxonomy: "server", "campaign", "job", "queue", "execute", "component", "stage:S", "dtl:put", ...
	Start   time.Time
	End     time.Time
	Attrs   []Attr
	IsError bool
	Status  string
}

// Duration returns End-Start.
func (d SpanData) Duration() time.Duration { return d.End.Sub(d.Start) }

// Tracer creates spans and retains completed ones in a bounded store.
// A nil *Tracer is a valid no-op tracer. Safe for concurrent use.
type Tracer struct {
	store *Store
	// idState seeds splitmix64; advanced atomically so ID generation is
	// lock-free. Seeded from crypto/rand at construction.
	idState atomic.Uint64
}

// NewTracer returns a tracer retaining completed spans in store (which
// must be non-nil; use NewStore).
func NewTracer(store *Store) *Tracer {
	t := &Tracer{store: store}
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err == nil {
		t.idState.Store(binary.LittleEndian.Uint64(seed[:]))
	} else {
		t.idState.Store(uint64(time.Now().UnixNano()))
	}
	return t
}

// Store returns the tracer's span store (nil for a nil tracer).
func (t *Tracer) Store() *Store {
	if t == nil {
		return nil
	}
	return t.store
}

// nextID advances splitmix64 and returns a well-mixed 64-bit value.
func (t *Tracer) nextID() uint64 {
	for {
		z := t.idState.Add(0x9e3779b97f4a7c15)
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		if z != 0 {
			return z
		}
	}
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], t.nextID())
	binary.BigEndian.PutUint64(id[8:], t.nextID())
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], t.nextID())
	return id
}

// StartSpan starts a span named name with the given kind. The parent is
// resolved from ctx: an in-process span (ContextWithSpan) wins, then a
// remote context (ContextWithRemote); with neither, a new trace is
// rooted. Returns the derived context carrying the new span, and the
// span. On a nil tracer both are pass-throughs (ctx unchanged, nil
// span).
func (t *Tracer) StartSpan(ctx context.Context, name, kind string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var sc SpanContext
	var parent SpanID
	if p := SpanFromContext(ctx); p != nil {
		sc.TraceID = p.sc.TraceID
		parent = p.sc.SpanID
	} else if r := remoteFromContext(ctx); r.IsValid() {
		sc.TraceID = r.TraceID
		parent = r.SpanID
	} else {
		sc.TraceID = t.newTraceID()
	}
	sc.SpanID = t.newSpanID()
	s := &Span{
		tracer: t,
		sc:     sc,
		parent: parent,
		name:   name,
		kind:   kind,
		start:  time.Now(),
		attrs:  attrs,
	}
	return ContextWithSpan(ctx, s), s
}

// SpanAt records a completed span with caller-supplied timestamps under
// an explicit parent, returning its context. It is the bridge entry
// point: obs events (virtual clock) are replayed as finished spans with
// wall-clock times mapped by the caller. A nil tracer records nothing
// and returns the zero context.
func (t *Tracer) SpanAt(parent SpanContext, name, kind string, start, end time.Time, attrs ...Attr) SpanContext {
	if t == nil {
		return SpanContext{}
	}
	if end.Before(start) {
		end = start
	}
	sc := SpanContext{TraceID: parent.TraceID, SpanID: t.newSpanID()}
	if !sc.TraceID.IsValid() {
		sc.TraceID = t.newTraceID()
	}
	t.store.add(SpanData{
		TraceID: sc.TraceID,
		SpanID:  sc.SpanID,
		Parent:  parent.SpanID,
		Name:    name,
		Kind:    kind,
		Start:   start,
		End:     end,
		Attrs:   attrs,
	})
	return sc
}

type ctxKey int

const (
	spanKey ctxKey = iota
	remoteKey
)

// ContextWithSpan returns ctx carrying s as the current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey, s)
}

// SpanFromContext returns the current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// ContextWithRemote returns ctx carrying a remote parent context (from
// an incoming traceparent header). StartSpan consults it only when no
// in-process span is present.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.IsValid() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey, sc)
}

func remoteFromContext(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	sc, _ := ctx.Value(remoteKey).(SpanContext)
	return sc
}
