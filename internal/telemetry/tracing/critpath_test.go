package tracing

import (
	"math"
	"testing"
	"time"
)

// mkSpan builds a SpanData with second-granularity times for readable
// test fixtures.
func mkSpan(id, parent byte, name, kind string, start, end float64) SpanData {
	d := SpanData{Name: name, Kind: kind,
		Start: time.Unix(0, int64(start*float64(time.Second))),
		End:   time.Unix(0, int64(end*float64(time.Second)))}
	d.TraceID = TraceID{1}
	d.SpanID = SpanID{id}
	if parent != 0 {
		d.Parent = SpanID{parent}
	}
	return d
}

func totalSec(cp *CriticalPath) float64 {
	var sum float64
	for _, s := range cp.Segments {
		sum += s.Sec
	}
	return sum
}

func TestCriticalPathLeafOnly(t *testing.T) {
	spans := []SpanData{mkSpan(1, 0, "root", "job", 0, 10)}
	cp, err := ComputeCriticalPath(spans, SpanID{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Segments) != 1 || cp.Segments[0].Kind != "job" {
		t.Fatalf("segments = %+v", cp.Segments)
	}
	if math.Abs(totalSec(cp)-10) > 1e-9 || math.Abs(cp.TotalSec-10) > 1e-9 {
		t.Fatalf("total = %v, want 10", totalSec(cp))
	}
}

func TestCriticalPathSequentialChildren(t *testing.T) {
	// root [0,10]; queue [0,3]; execute [3,9]; gap [9,10] is root's own.
	spans := []SpanData{
		mkSpan(1, 0, "job", "job", 0, 10),
		mkSpan(2, 1, "queue", "queue", 0, 3),
		mkSpan(3, 1, "execute", "execute", 3, 9),
	}
	cp, err := ComputeCriticalPath(spans, SpanID{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(totalSec(cp)-10) > 1e-9 {
		t.Fatalf("segments sum to %v, want exactly 10: %+v", totalSec(cp), cp.Segments)
	}
	want := map[string]float64{"queue": 3, "execute": 6, "job": 1}
	got := map[string]float64{}
	for _, kt := range cp.ByKind {
		got[kt.Kind] = kt.Sec
	}
	for k, v := range want {
		if math.Abs(got[k]-v) > 1e-9 {
			t.Fatalf("kind %s = %v, want %v (all: %+v)", k, got[k], v, cp.ByKind)
		}
	}
	// ByKind is sorted descending by time.
	if cp.ByKind[0].Kind != "execute" {
		t.Fatalf("ByKind not sorted: %+v", cp.ByKind)
	}
	if math.Abs(cp.ByKind[0].Frac-0.6) > 1e-9 {
		t.Fatalf("execute frac = %v, want 0.6", cp.ByKind[0].Frac)
	}
}

func TestCriticalPathPicksLastFinishingChild(t *testing.T) {
	// Two parallel children; the later-finishing one is on the path for
	// its window, the earlier one only for the uncovered prefix.
	spans := []SpanData{
		mkSpan(1, 0, "root", "job", 0, 10),
		mkSpan(2, 1, "a", "stage:S", 0, 4),
		mkSpan(3, 1, "b", "stage:A", 2, 10),
	}
	cp, err := ComputeCriticalPath(spans, SpanID{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(totalSec(cp)-10) > 1e-9 {
		t.Fatalf("segments sum to %v, want 10", totalSec(cp))
	}
	got := map[string]float64{}
	for _, kt := range cp.ByKind {
		got[kt.Kind] = kt.Sec
	}
	// b covers [2,10] (8s), a covers the remaining [0,2] (2s).
	if math.Abs(got["stage:A"]-8) > 1e-9 || math.Abs(got["stage:S"]-2) > 1e-9 {
		t.Fatalf("breakdown wrong: %+v", cp.ByKind)
	}
}

func TestCriticalPathDeepNesting(t *testing.T) {
	// job → execute → component → stage; stage dominates.
	spans := []SpanData{
		mkSpan(1, 0, "job", "job", 0, 12),
		mkSpan(2, 1, "queue", "queue", 0, 2),
		mkSpan(3, 1, "execute", "execute", 2, 12),
		mkSpan(4, 3, "sim[0]", "component", 2, 11),
		mkSpan(5, 4, "S", "stage:S", 2, 7),
		mkSpan(6, 4, "A", "stage:A", 7, 11),
	}
	cp, err := ComputeCriticalPath(spans, SpanID{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(totalSec(cp)-12) > 1e-9 {
		t.Fatalf("segments sum to %v, want 12", totalSec(cp))
	}
	got := map[string]float64{}
	for _, kt := range cp.ByKind {
		got[kt.Kind] = kt.Sec
	}
	want := map[string]float64{"queue": 2, "stage:S": 5, "stage:A": 4, "execute": 1}
	for k, v := range want {
		if math.Abs(got[k]-v) > 1e-9 {
			t.Fatalf("kind %s = %v, want %v (all: %+v)", k, got[k], v, cp.ByKind)
		}
	}
	if got["component"] != 0 {
		t.Fatalf("component fully covered by stages but got %v", got["component"])
	}
}

func TestCriticalPathClampsRunawayChild(t *testing.T) {
	// Child timestamps escape the parent window; clamping keeps the sum
	// exactly equal to the root duration.
	spans := []SpanData{
		mkSpan(1, 0, "root", "job", 5, 10),
		mkSpan(2, 1, "wild", "stage:W", 0, 20),
	}
	cp, err := ComputeCriticalPath(spans, SpanID{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(totalSec(cp)-5) > 1e-9 {
		t.Fatalf("segments sum to %v, want 5", totalSec(cp))
	}
}

func TestCriticalPathMissingRoot(t *testing.T) {
	if _, err := ComputeCriticalPath(nil, SpanID{9}); err == nil {
		t.Fatal("missing root accepted")
	}
}

func TestCriticalPathZeroDurationRoot(t *testing.T) {
	// Cache-hit jobs complete instantly; the report must not divide by
	// zero or invent segments.
	spans := []SpanData{mkSpan(1, 0, "job", "job", 3, 3)}
	cp, err := ComputeCriticalPath(spans, SpanID{1})
	if err != nil {
		t.Fatal(err)
	}
	if cp.TotalSec != 0 || len(cp.Segments) != 0 {
		t.Fatalf("zero-duration root produced %+v", cp)
	}
}

func TestFindRoot(t *testing.T) {
	spans := []SpanData{
		mkSpan(2, 1, "child", "job", 1, 2),
		mkSpan(1, 0, "root", "server", 0, 3),
		mkSpan(3, 9, "orphan", "job", 0.5, 1), // parent not in trace
	}
	root, ok := FindRoot(spans)
	if !ok || root.Name != "root" {
		t.Fatalf("FindRoot = %+v, %v", root, ok)
	}
	if _, ok := FindRoot(nil); ok {
		t.Fatal("FindRoot on empty slice reported a root")
	}
}

func TestCriticalPathCycleGuard(t *testing.T) {
	// Corrupt input: two spans claiming each other as parent must not
	// hang the walker.
	a := mkSpan(1, 2, "a", "job", 0, 10)
	b := mkSpan(2, 1, "b", "queue", 0, 10)
	cp, err := ComputeCriticalPath([]SpanData{a, b}, SpanID{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(totalSec(cp)-10) > 1e-9 {
		t.Fatalf("segments sum to %v, want 10", totalSec(cp))
	}
}
