package tracing

import "sync"

// Store retains completed spans grouped by trace, bounded two ways:
// at most maxTraces traces (oldest trace evicted whole, FIFO) and at
// most maxSpansPerTrace spans per trace (later spans dropped, counted).
// Whole-trace eviction keeps every retained trace internally complete —
// a partially evicted trace would break critical-path extraction.
// A nil *Store drops everything. Safe for concurrent use.
type Store struct {
	mu               sync.Mutex
	maxTraces        int
	maxSpansPerTrace int
	traces           map[TraceID]*traceEntry
	order            []TraceID // insertion order for FIFO eviction
	dropped          uint64    // spans dropped by the per-trace cap
}

type traceEntry struct {
	spans   []SpanData
	dropped int
}

// DefaultMaxTraces bounds retained traces when NewStore is given 0.
const DefaultMaxTraces = 1024

// DefaultMaxSpansPerTrace bounds spans per trace when NewStore is given 0.
const DefaultMaxSpansPerTrace = 8192

// NewStore returns a bounded span store; zero limits select the
// defaults.
func NewStore(maxTraces, maxSpansPerTrace int) *Store {
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}
	if maxSpansPerTrace <= 0 {
		maxSpansPerTrace = DefaultMaxSpansPerTrace
	}
	return &Store{
		maxTraces:        maxTraces,
		maxSpansPerTrace: maxSpansPerTrace,
		traces:           make(map[TraceID]*traceEntry),
	}
}

// add appends a completed span to its trace, applying both bounds.
func (st *Store) add(d SpanData) {
	if st == nil || !d.TraceID.IsValid() {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.traces[d.TraceID]
	if e == nil {
		for len(st.order) >= st.maxTraces {
			oldest := st.order[0]
			st.order = st.order[1:]
			delete(st.traces, oldest)
		}
		e = &traceEntry{}
		st.traces[d.TraceID] = e
		st.order = append(st.order, d.TraceID)
	}
	if len(e.spans) >= st.maxSpansPerTrace {
		e.dropped++
		st.dropped++
		return
	}
	e.spans = append(e.spans, d)
}

// Spans returns a copy of every retained span of the trace, in
// completion order (children before parents, since a parent ends
// last). Returns nil for unknown traces or a nil store.
func (st *Store) Spans(id TraceID) []SpanData {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.traces[id]
	if e == nil {
		return nil
	}
	return append([]SpanData(nil), e.spans...)
}

// Dropped returns the total spans dropped by the per-trace cap.
func (st *Store) Dropped() uint64 {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.dropped
}

// Len returns the number of retained traces.
func (st *Store) Len() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.traces)
}
