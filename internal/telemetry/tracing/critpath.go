package tracing

import (
	"fmt"
	"sort"
	"time"
)

// Critical-path extraction: given one trace's spans and a root, find
// the longest causal chain — the sequence of spans that actually set
// the root's latency — by walking backwards from the root's end through
// the last-finishing child at each level. Every instant of the root's
// window is attributed to exactly one span (gaps between children
// belong to the parent's own time), so segment durations sum exactly
// to the root duration. This is the runtime analogue of the paper's
// Eq. 5–9 idle accounting: the ByKind rollup says how much of a job's
// latency was queueing, simulation stages, data transport, or network.

// Segment is one contiguous stretch of the critical path, attributed
// to a single span.
type Segment struct {
	SpanID string    `json:"spanId"`
	Name   string    `json:"name"`
	Kind   string    `json:"kind"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	Sec    float64   `json:"sec"`
}

// KindTotal aggregates critical-path time by span kind.
type KindTotal struct {
	Kind string  `json:"kind"`
	Sec  float64 `json:"sec"`
	Frac float64 `json:"frac"` // share of the root duration
}

// CriticalPath is the report for one root span.
type CriticalPath struct {
	TraceID    string      `json:"traceId"`
	RootSpanID string      `json:"rootSpanId"`
	RootName   string      `json:"rootName"`
	Start      time.Time   `json:"start"`
	End        time.Time   `json:"end"`
	TotalSec   float64     `json:"totalSec"`
	Segments   []Segment   `json:"segments"`
	ByKind     []KindTotal `json:"byKind"`
}

// ComputeCriticalPath extracts the critical path of the trace rooted at
// root. spans must all belong to one trace; spans outside the root's
// subtree are ignored. Children are clamped to their parent's window,
// so malformed timestamps cannot push the total past the root duration.
func ComputeCriticalPath(spans []SpanData, root SpanID) (*CriticalPath, error) {
	byID := make(map[SpanID]*SpanData, len(spans))
	children := make(map[SpanID][]*SpanData, len(spans))
	for i := range spans {
		d := &spans[i]
		byID[d.SpanID] = d
	}
	for i := range spans {
		d := &spans[i]
		if d.Parent.IsValid() && byID[d.Parent] != nil && d.Parent != d.SpanID {
			children[d.Parent] = append(children[d.Parent], d)
		}
	}
	r := byID[root]
	if r == nil {
		return nil, fmt.Errorf("tracing: root span %s not in trace", root)
	}

	w := &walker{children: children, onPath: make(map[SpanID]bool)}
	w.walk(r, r.Start, r.End)
	sort.Slice(w.segments, func(i, k int) bool { return w.segments[i].Start.Before(w.segments[k].Start) })

	total := r.End.Sub(r.Start).Seconds()
	cp := &CriticalPath{
		TraceID:    r.TraceID.String(),
		RootSpanID: r.SpanID.String(),
		RootName:   r.Name,
		Start:      r.Start,
		End:        r.End,
		TotalSec:   total,
		Segments:   w.segments,
	}
	byKind := make(map[string]float64)
	for _, s := range w.segments {
		byKind[s.Kind] += s.Sec
	}
	for kind, sec := range byKind {
		frac := 0.0
		if total > 0 {
			frac = sec / total
		}
		cp.ByKind = append(cp.ByKind, KindTotal{Kind: kind, Sec: sec, Frac: frac})
	}
	sort.Slice(cp.ByKind, func(i, k int) bool {
		if cp.ByKind[i].Sec != cp.ByKind[k].Sec {
			return cp.ByKind[i].Sec > cp.ByKind[k].Sec
		}
		return cp.ByKind[i].Kind < cp.ByKind[k].Kind
	})
	return cp, nil
}

type walker struct {
	children map[SpanID][]*SpanData
	segments []Segment
	onPath   map[SpanID]bool // cycle guard: a span visits the path once
}

// walk attributes the window [lo, hi] of span s: gaps and uncovered
// time to s itself, covered stretches to the last-finishing child in
// each stretch, recursively.
func (w *walker) walk(s *SpanData, lo, hi time.Time) {
	if w.onPath[s.SpanID] {
		w.emit(s, lo, hi)
		return
	}
	w.onPath[s.SpanID] = true
	defer delete(w.onPath, s.SpanID)

	cursor := hi
	for cursor.After(lo) {
		// The child that finishes last at or before the cursor (window
		// clamped to [lo, cursor]) is the causal predecessor of whatever
		// the cursor currently rests on.
		var best *SpanData
		var bestEnd time.Time
		for _, c := range w.children[s.SpanID] {
			cs, ce := clamp(c.Start, lo, cursor), clamp(c.End, lo, cursor)
			if !ce.After(cs) { // clamped to nothing
				continue
			}
			if best == nil || ce.After(bestEnd) || (ce.Equal(bestEnd) && cs.Before(clamp(best.Start, lo, cursor))) {
				best, bestEnd = c, ce
			}
		}
		if best == nil {
			break
		}
		// Gap between the child's end and the cursor is the parent's own
		// time (e.g. result derivation after the DES run).
		if cursor.After(bestEnd) {
			w.emit(s, bestEnd, cursor)
		}
		cs := clamp(best.Start, lo, cursor)
		w.walk(best, cs, bestEnd)
		cursor = cs
	}
	if cursor.After(lo) {
		w.emit(s, lo, cursor)
	}
}

func (w *walker) emit(s *SpanData, lo, hi time.Time) {
	if !hi.After(lo) {
		return
	}
	w.segments = append(w.segments, Segment{
		SpanID: s.SpanID.String(),
		Name:   s.Name,
		Kind:   s.Kind,
		Start:  lo,
		End:    hi,
		Sec:    hi.Sub(lo).Seconds(),
	})
}

func clamp(t, lo, hi time.Time) time.Time {
	if t.Before(lo) {
		return lo
	}
	if t.After(hi) {
		return hi
	}
	return t
}

// FindRoot returns the root span of the trace: the span whose parent is
// zero or absent from the trace. With several candidates the earliest-
// starting one wins. ok is false for an empty slice.
func FindRoot(spans []SpanData) (SpanData, bool) {
	present := make(map[SpanID]bool, len(spans))
	for _, d := range spans {
		present[d.SpanID] = true
	}
	var root SpanData
	found := false
	for _, d := range spans {
		if d.Parent.IsValid() && present[d.Parent] {
			continue
		}
		if !found || d.Start.Before(root.Start) {
			root, found = d, true
		}
	}
	return root, found
}

// Depth returns the maximum ancestor-chain length in the trace (a
// root-only trace has depth 1). The smoke test asserts the request →
// campaign → job → stage chain reaches at least 4.
func Depth(spans []SpanData) int {
	byID := make(map[SpanID]SpanData, len(spans))
	for _, d := range spans {
		byID[d.SpanID] = d
	}
	memo := make(map[SpanID]int, len(spans))
	var depth func(id SpanID, seen map[SpanID]bool) int
	depth = func(id SpanID, seen map[SpanID]bool) int {
		if v, ok := memo[id]; ok {
			return v
		}
		if seen[id] {
			return 0
		}
		seen[id] = true
		d, ok := byID[id]
		v := 1
		if ok && d.Parent.IsValid() {
			if _, ok := byID[d.Parent]; ok {
				v = depth(d.Parent, seen) + 1
			}
		}
		delete(seen, id)
		memo[id] = v
		return v
	}
	max := 0
	for _, d := range spans {
		if v := depth(d.SpanID, make(map[SpanID]bool)); v > max {
			max = v
		}
	}
	return max
}
