// Package telemetry is the service-tier metrics and logging layer of the
// reproduction: a dependency-free (stdlib-only) metrics registry with
// Prometheus text-format exposition, and a leveled structured JSON
// logger.
//
// Where internal/obs records the *simulated* world on the virtual clock,
// telemetry records the *serving* world on the wall clock: queue depths,
// worker busy-time, cache hit rates, request latencies. The two meet at
// one scrape: obs.Recorder counters bridge into the registry via an
// obs.Sink (see NewObsSink), so `GET /metrics` on cmd/ensembled covers
// both tiers.
//
// Like obs, the package is nil-safe by design: every method on a nil
// *Registry, nil metric handle, or nil *Logger returns immediately, so
// instrumented code threads handles unconditionally and an uninstrumented
// service pays one nil check per site (see BenchmarkTelemetryOverhead at
// the repository root). All metric operations are lock-free atomics and
// safe for concurrent use.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// metricType classifies a family for exposition.
type metricType uint8

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families keyed by name. A nil *Registry is a
// valid no-op registry: every constructor returns a nil handle whose
// methods do nothing, so "telemetry off" costs one branch per operation.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric: a fixed type, fixed label names, and one
// cell per label-value combination (a single unlabeled cell when the
// family has no labels).
type family struct {
	name   string
	help   string
	typ    metricType
	labels []string
	bounds []float64 // histogram bucket upper bounds (finite, ascending)

	mu    sync.Mutex
	cells map[string]any // label-value key -> *Counter | *Gauge | *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the family, creating it on first registration.
// Re-registering a name with a different type or label arity panics:
// that is a programming error, not an operational condition.
func (r *Registry) lookup(name, help string, typ metricType, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s with %d labels (was %s with %d)",
				name, typ, len(labels), f.typ, len(f.labels)))
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		typ:    typ,
		labels: append([]string(nil), labels...),
		bounds: bounds,
		cells:  make(map[string]any),
	}
	r.families[name] = f
	return f
}

// cell returns the family's cell for the label values, creating it on
// first use. The value count must match the family's label names —
// anything else would corrupt the exposition, so it panics like a type
// mismatch does.
func (f *family) cell(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %s takes %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.cells[key]; ok {
		return c
	}
	var c any
	switch f.typ {
	case typeCounter:
		c = &Counter{}
	case typeGauge:
		c = &Gauge{}
	case typeHistogram:
		c = newHistogram(f.bounds)
	}
	f.cells[key] = c
	return c
}

// labelKey joins label values with an unprintable separator so distinct
// tuples never collide.
func labelKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := 0
	for _, v := range values {
		n += len(v) + 1
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, '\xff')
		}
		b = append(b, v...)
	}
	return string(b)
}

// sortedFamilies snapshots the families in name order for exposition.
func (r *Registry) sortedFamilies() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, k int) bool { return fams[i].name < fams[k].name })
	return fams
}

// Counter is a monotonically increasing value.
type Counter struct{ bits atomic.Uint64 }

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeCounter, nil, nil).cell(nil).(*Counter)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v (negative deltas are ignored: counters
// are monotonic by contract).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	addFloat(&c.bits, v)
}

// SetTotal raises the counter to total if total is ahead of the current
// value; regressions are ignored so bridged cumulative sources (obs
// CounterSet events, which re-emit running totals) keep the counter
// monotonic.
func (c *Counter) SetTotal(total float64) {
	if c == nil {
		return
	}
	for {
		old := c.bits.Load()
		if math.Float64frombits(old) >= total {
			return
		}
		if c.bits.CompareAndSwap(old, math.Float64bits(total)) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeGauge, nil, nil).cell(nil).(*Gauge)
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by v (negative to decrease).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	addFloat(&g.bits, v)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// addFloat atomically adds v to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a counter family with the given label
// names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.lookup(name, help, typeCounter, labels, nil)}
}

// With returns the counter for the label values (one per label name).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.cell(values).(*Counter)
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers (or finds) a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.lookup(name, help, typeGauge, labels, nil)}
}

// With returns the gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.cell(values).(*Gauge)
}

// HistogramVec is a labeled histogram family; every cell shares the
// family's bucket bounds.
type HistogramVec struct{ f *family }

// HistogramVec registers (or finds) a histogram family. A nil or empty
// buckets slice uses DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.lookup(name, help, typeHistogram, labels, normalizeBuckets(buckets))}
}

// With returns the histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.cell(values).(*Histogram)
}
