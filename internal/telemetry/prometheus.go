package telemetry

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes every family in Prometheus text exposition
// format (version 0.0.4): `# HELP` / `# TYPE` headers followed by one
// sample line per cell, families in name order and cells in label order,
// so consecutive scrapes of a quiet registry are byte-identical. A nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		f.write(bw)
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the registry as a Prometheus
// scrape target — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// write emits one family.
func (f *family) write(w *bufio.Writer) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.cells))
	for k := range f.cells {
		keys = append(keys, k)
	}
	cells := make([]any, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		cells = append(cells, f.cells[k])
	}
	f.mu.Unlock()
	if len(cells) == 0 {
		return
	}

	if f.help != "" {
		w.WriteString("# HELP ")
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(escapeHelp(f.help))
		w.WriteByte('\n')
	}
	w.WriteString("# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.typ.String())
	w.WriteByte('\n')

	for i, key := range keys {
		values := splitLabelKey(key, len(f.labels))
		switch c := cells[i].(type) {
		case *Counter:
			writeSample(w, f.name, "", f.labels, values, "", "", formatFloat(c.Value()))
		case *Gauge:
			writeSample(w, f.name, "", f.labels, values, "", "", formatFloat(c.Value()))
		case *Histogram:
			counts := c.snapshot()
			var cum uint64
			for bi, bound := range c.bounds {
				cum += counts[bi]
				writeSample(w, f.name, "_bucket", f.labels, values, "le", formatFloat(bound),
					strconv.FormatUint(cum, 10))
			}
			cum += counts[len(counts)-1]
			writeSample(w, f.name, "_bucket", f.labels, values, "le", "+Inf",
				strconv.FormatUint(cum, 10))
			writeSample(w, f.name, "_sum", f.labels, values, "", "", formatFloat(c.Sum()))
			writeSample(w, f.name, "_count", f.labels, values, "", "", strconv.FormatUint(c.Count(), 10))
		}
	}
}

// writeSample emits one `name{labels} value` line; extraName/extraValue
// append a synthetic label (the histogram `le`).
func writeSample(w *bufio.Writer, name, suffix string, labels, values []string, extraName, extraValue, sample string) {
	w.WriteString(name)
	w.WriteString(suffix)
	if len(labels) > 0 || extraName != "" {
		w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(l)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(values[i]))
			w.WriteByte('"')
		}
		if extraName != "" {
			if len(labels) > 0 {
				w.WriteByte(',')
			}
			w.WriteString(extraName)
			w.WriteString(`="`)
			w.WriteString(extraValue)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(sample)
	w.WriteByte('\n')
}

// splitLabelKey reverses labelKey for exposition.
func splitLabelKey(key string, n int) []string {
	switch n {
	case 0:
		return nil
	case 1:
		return []string{key}
	}
	return strings.SplitN(key, "\xff", n)
}

// formatFloat renders a sample value: integers without a decimal point
// (bucket counts and counter totals read naturally), shortest round-trip
// form otherwise.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
