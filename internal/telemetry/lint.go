package telemetry

import (
	"fmt"
	"strings"
)

// FamilyInfo describes one registered metric family for introspection —
// the input to Lint and to any external naming audit.
type FamilyInfo struct {
	// Name is the family name ("campaign_core_seconds_total").
	Name string
	// Help is the HELP text.
	Help string
	// Type is the exposition type ("counter", "gauge", "histogram").
	Type string
	// Labels are the label names in registration order.
	Labels []string
}

// Families lists every registered family in name order.
func (r *Registry) Families() []FamilyInfo {
	fams := r.sortedFamilies()
	out := make([]FamilyInfo, 0, len(fams))
	for _, f := range fams {
		out = append(out, FamilyInfo{
			Name:   f.name,
			Help:   f.help,
			Type:   f.typ.String(),
			Labels: append([]string(nil), f.labels...),
		})
	}
	return out
}

// Lint audits the registry against the exposition conventions this
// repository pins in tests: every family carries help text, names and
// labels are snake_case, counters end in _total, and nothing else does.
// It returns one finding per violation (empty = clean). Duplicate
// registration is not a lint finding — Registry.lookup panics on it at
// registration time, which tests assert directly.
func (r *Registry) Lint() []string {
	var findings []string
	for _, f := range r.Families() {
		if f.Help == "" {
			findings = append(findings, fmt.Sprintf("%s: empty help text", f.Name))
		}
		if !validMetricName(f.Name) {
			findings = append(findings, fmt.Sprintf("%s: name is not snake_case", f.Name))
		}
		hasTotal := strings.HasSuffix(f.Name, "_total")
		if f.Type == "counter" && !hasTotal {
			findings = append(findings, fmt.Sprintf("%s: counter does not end in _total", f.Name))
		}
		if f.Type != "counter" && hasTotal {
			findings = append(findings, fmt.Sprintf("%s: %s must not end in _total", f.Name, f.Type))
		}
		for _, l := range f.Labels {
			if !validMetricName(l) {
				findings = append(findings, fmt.Sprintf("%s: label %q is not snake_case", f.Name, l))
			}
		}
	}
	return findings
}

// validMetricName reports whether s matches ^[a-z][a-z0-9_]*$ — the
// snake_case subset of the Prometheus grammar this repository uses.
func validMetricName(s string) bool {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}
