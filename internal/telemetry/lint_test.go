package telemetry

import (
	"strings"
	"testing"
)

func TestLintCleanRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_done_total", "Jobs completed.")
	r.Gauge("queue_depth", "Jobs waiting.")
	r.CounterVec("cache_hits_total", "Cache hits by tier.", "tier")
	r.HistogramVec("exec_seconds", "Execution latency.", nil, "status")
	if findings := r.Lint(); len(findings) != 0 {
		t.Fatalf("clean registry linted dirty: %v", findings)
	}
}

func TestLintFindings(t *testing.T) {
	r := NewRegistry()
	r.Counter("no_help_total", "")
	r.Counter("missing_suffix", "Counter without _total.")
	r.Gauge("depth_total", "Gauge with counter suffix.")
	r.Counter("CamelCase_total", "Bad name.")
	r.CounterVec("bad_label_total", "Bad label.", "camelLabel")

	findings := r.Lint()
	wants := []string{
		"no_help_total: empty help",
		"missing_suffix: counter does not end in _total",
		"depth_total: gauge must not end in _total",
		"CamelCase_total: name is not snake_case",
		`bad_label_total: label "camelLabel" is not snake_case`,
	}
	for _, want := range wants {
		found := false
		for _, f := range findings {
			if strings.Contains(f, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing finding %q in %v", want, findings)
		}
	}
	if len(findings) != len(wants) {
		t.Fatalf("findings = %v, want %d entries", findings, len(wants))
	}
}

func TestFamiliesIntrospection(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("b_total", "B.", "x", "y")
	r.Gauge("a", "A.")
	fams := r.Families()
	if len(fams) != 2 || fams[0].Name != "a" || fams[1].Name != "b_total" {
		t.Fatalf("families = %+v", fams)
	}
	if fams[1].Type != "counter" || len(fams[1].Labels) != 2 {
		t.Fatalf("family b_total = %+v", fams[1])
	}
	if fams[0].Type != "gauge" || fams[0].Help != "A." {
		t.Fatalf("family a = %+v", fams[0])
	}
}

// TestDuplicateRegistrationPanics pins the registry's duplicate
// detection: re-registering a name with a different shape is a
// programming error surfaced at registration, not a lint finding.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "First.")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering dup_total as a gauge did not panic")
		}
	}()
	r.Gauge("dup_total", "Second, different type.")
}

func TestNilRegistryLint(t *testing.T) {
	var r *Registry
	if got := r.Lint(); got != nil {
		t.Fatalf("nil registry lint = %v", got)
	}
	if got := r.Families(); len(got) != 0 {
		t.Fatalf("nil registry families = %v", got)
	}
}
