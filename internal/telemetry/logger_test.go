package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line %q is not JSON: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestLoggerJSONLines(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug)
	l.SetClock(func() time.Time { return time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC) })
	l.Info("hello", "jobs", 7, "rate", 0.5, "name", `a"b`)
	l.Error("boom", "err", "queue full")

	lines := decodeLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	first := lines[0]
	if first["level"] != "info" || first["msg"] != "hello" {
		t.Errorf("first line %v", first)
	}
	if first["ts"] != "2026-08-06T12:00:00Z" {
		t.Errorf("ts = %v", first["ts"])
	}
	if first["jobs"] != 7.0 || first["rate"] != 0.5 || first["name"] != `a"b` {
		t.Errorf("fields %v", first)
	}
	if lines[1]["level"] != "error" || lines[1]["err"] != "queue full" {
		t.Errorf("second line %v", lines[1])
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelWarn)
	l.Debug("nope")
	l.Info("nope")
	l.Warn("yes")
	l.Error("also")
	lines := decodeLines(t, &buf)
	if len(lines) != 2 || lines[0]["msg"] != "yes" || lines[1]["msg"] != "also" {
		t.Fatalf("filtered output %v", lines)
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Error("Enabled disagrees with filter")
	}
}

func TestLoggerWithFields(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo).With("svc", "campaign", "worker", 3)
	l.Info("start", "job", "j-1")
	lines := decodeLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("got %d lines", len(lines))
	}
	m := lines[0]
	if m["svc"] != "campaign" || m["worker"] != 3.0 || m["job"] != "j-1" {
		t.Errorf("bound fields %v", m)
	}
}

func TestLoggerWithTrace(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.WithTrace("0af7651916cd43dd8448eb211c80319c", "b7ad6b7169203331").Info("traced")
	l.WithTrace("0af7651916cd43dd8448eb211c80319c", "").Info("trace only")
	lines := decodeLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[0]["trace_id"] != "0af7651916cd43dd8448eb211c80319c" || lines[0]["span_id"] != "b7ad6b7169203331" {
		t.Errorf("traced line %v", lines[0])
	}
	if lines[1]["trace_id"] != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("trace-only line %v", lines[1])
	}
	if _, ok := lines[1]["span_id"]; ok {
		t.Errorf("empty span_id should be omitted: %v", lines[1])
	}
}

func TestLoggerWithTraceEmptyIsIdentity(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	if l.WithTrace("", "b7ad6b7169203331") != l {
		t.Error("empty trace ID should return the receiver unchanged")
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Debug("x")
	l.Info("x", "k", 1)
	l.Warn("x")
	l.Error("x")
	if l.Enabled(LevelError) {
		t.Error("nil logger should report disabled")
	}
	if l.With("k", "v") != nil {
		t.Error("nil logger With should stay nil")
	}
	if l.WithTrace("0af7651916cd43dd8448eb211c80319c", "b7ad6b7169203331") != nil {
		t.Error("nil logger WithTrace should stay nil")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "INFO": LevelInfo,
		"warn": LevelWarn, "warning": LevelWarn, "error": LevelError,
	} {
		got, ok := ParseLevel(s)
		if !ok || got != want {
			t.Errorf("ParseLevel(%q) = %v/%v", s, got, ok)
		}
	}
	if _, ok := ParseLevel("loud"); ok {
		t.Error("ParseLevel accepted garbage")
	}
}
