package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int8

const (
	// LevelDebug logs everything, including per-job lifecycle chatter.
	LevelDebug Level = iota
	// LevelInfo logs operational milestones (startup, campaigns, shutdowns).
	LevelInfo
	// LevelWarn logs degraded-but-running conditions (rejects, drops).
	LevelWarn
	// LevelError logs failures.
	LevelError
)

// String returns the level's wire name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "level(" + strconv.Itoa(int(l)) + ")"
}

// ParseLevel maps a level name ("debug", "info", "warn", "error",
// case-insensitive) to its Level; unknown names default to LevelInfo with
// ok=false.
func ParseLevel(s string) (Level, bool) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, true
	case "info":
		return LevelInfo, true
	case "warn", "warning":
		return LevelWarn, true
	case "error":
		return LevelError, true
	}
	return LevelInfo, false
}

// Logger writes leveled, structured JSON lines: one object per record
// with "ts" (RFC 3339, wall clock), "level", "msg", then bound fields and
// per-call key/value pairs in argument order. A nil *Logger discards
// everything. Loggers derived with With share one writer mutex, so
// records from concurrent goroutines never interleave mid-line.
type Logger struct {
	mu     *sync.Mutex
	w      io.Writer
	min    Level
	now    func() time.Time
	fields []byte // pre-encoded `,"key":value` pairs bound by With
}

// NewLogger returns a logger writing records at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, min: min, now: time.Now}
}

// SetClock rebinds the timestamp source (tests pin it).
func (l *Logger) SetClock(now func() time.Time) {
	if l == nil {
		return
	}
	l.now = now
}

// Enabled reports whether records at lv would be written.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= l.min
}

// With returns a logger that appends the key/value pairs to every record.
// kv alternates string keys and arbitrary JSON-encodable values.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	out := *l
	out.fields = append(append([]byte(nil), l.fields...), encodeFields(kv)...)
	return &out
}

// WithTrace returns a logger that stamps every record with the given
// trace correlation IDs as "trace_id" and "span_id" (hex strings from
// the tracing package). Empty IDs bind nothing, so call sites can pass
// span accessors unconditionally — an untraced job logs without the
// fields rather than with empty ones.
func (l *Logger) WithTrace(traceID, spanID string) *Logger {
	if l == nil || traceID == "" {
		return l
	}
	if spanID == "" {
		return l.With("trace_id", traceID)
	}
	return l.With("trace_id", traceID, "span_id", spanID)
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lv Level, msg string, kv []any) {
	if !l.Enabled(lv) {
		return
	}
	buf := make([]byte, 0, 128+len(l.fields))
	buf = append(buf, `{"ts":`...)
	buf = strconv.AppendQuote(buf, l.now().Format(time.RFC3339Nano))
	buf = append(buf, `,"level":"`...)
	buf = append(buf, lv.String()...)
	buf = append(buf, `","msg":`...)
	buf = appendJSON(buf, msg)
	buf = append(buf, l.fields...)
	buf = append(buf, encodeFields(kv)...)
	buf = append(buf, '}', '\n')

	l.mu.Lock()
	_, _ = l.w.Write(buf)
	l.mu.Unlock()
}

// encodeFields renders alternating key/value pairs as `,"key":value`
// JSON fragments. A trailing key without a value logs as null; non-string
// keys are stringified rather than dropped, so a malformed call site
// still leaves evidence.
func encodeFields(kv []any) []byte {
	if len(kv) == 0 {
		return nil
	}
	var buf []byte
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		buf = append(buf, ',')
		buf = strconv.AppendQuote(buf, key)
		buf = append(buf, ':')
		if i+1 < len(kv) {
			buf = appendJSON(buf, kv[i+1])
		} else {
			buf = append(buf, "null"...)
		}
	}
	return buf
}

// appendJSON marshals v, degrading to a quoted Sprint for values JSON
// cannot represent (NaN, channels, cycles).
func appendJSON(buf []byte, v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return strconv.AppendQuote(buf, fmt.Sprint(v))
	}
	return append(buf, b...)
}
