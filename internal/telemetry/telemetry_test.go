package telemetry

import (
	"bytes"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // counters never go down
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	c.SetTotal(10)
	c.SetTotal(4) // monotonic: lower totals are ignored
	if got := c.Value(); got != 10 {
		t.Errorf("counter after SetTotal = %v, want 10", got)
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %v, want 4", got)
	}

	// Re-registration returns the same cell, not a fresh one.
	if r.Counter("jobs_total", "jobs") != c {
		t.Error("re-registering a counter returned a different cell")
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("reqs_total", "requests", "route", "code")
	v.With("/a", "200").Inc()
	v.With("/a", "200").Inc()
	v.With("/a", "500").Inc()
	if got := v.With("/a", "200").Value(); got != 2 {
		t.Errorf(`{"/a","200"} = %v, want 2`, got)
	}
	if got := v.With("/a", "500").Value(); got != 1 {
		t.Errorf(`{"/a","500"} = %v, want 1`, got)
	}

	defer func() {
		if recover() == nil {
			t.Error("label-arity mismatch should panic")
		}
	}()
	v.With("/a")
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("registering x_total as a gauge should panic")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("a_total", "a")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil-registry counter should stay zero")
	}
	g := r.Gauge("b", "b")
	g.Set(5)
	if g.Value() != 0 {
		t.Error("nil-registry gauge should stay zero")
	}
	h := r.Histogram("c_seconds", "c", nil)
	h.Observe(1)
	if h.Count() != 0 {
		t.Error("nil-registry histogram should stay empty")
	}
	r.CounterVec("d_total", "d", "l").With("v").Inc()
	r.GaugeVec("e", "e", "l").With("v").Set(1)
	r.HistogramVec("f_seconds", "f", nil, "l").With("v").Observe(1)
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Errorf("nil-registry write: %v", err)
	}
	if NewObsSink(nil) != nil {
		t.Error("NewObsSink(nil) should be nil")
	}
	var s *ObsSink
	s.Count("x", 1)
	s.QueueDepth("q", 1)
	s.Gauge("a", "b", 0, 1)
}

func TestHistogramBucketsMonotone(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 0.5, 1, 5})
	for _, v := range []float64{0.05, 0.05, 0.3, 0.7, 2, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	cum := h.snapshot()
	// snapshot returns per-bucket counts; cumulative form must be
	// non-decreasing and end at the total count (+Inf bucket).
	var running, prev uint64
	for i, c := range cum {
		running += c
		if running < prev {
			t.Fatalf("bucket %d not monotone: %v", i, cum)
		}
		prev = running
	}
	if running != 6 {
		t.Errorf("+Inf cumulative = %d, want count 6", running)
	}
	if got := h.Sum(); math.Abs(got-103.1) > 1e-9 {
		t.Errorf("sum = %v, want 103.1", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "q", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("quantile of an empty histogram should be NaN")
	}
	// Uniform 0..10: 1000 observations, one per millistep.
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) / 100.0)
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 5.0, 0.15},
		{0.9, 9.0, 0.15},
		{0.99, 9.9, 0.15},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("q%.2f = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
		}
	}
	// Observations beyond the last bound clamp to it rather than +Inf.
	h2 := r.Histogram("q2_seconds", "q2", []float64{1})
	h2.Observe(50)
	if got := h2.Quantile(0.99); got != 1 {
		t.Errorf("overflow quantile = %v, want clamp to 1", got)
	}
}

// sampleRE matches one Prometheus sample line: name{labels} value.
var sampleRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "total jobs").Add(3)
	r.Gauge("depth", "queue depth").Set(2)
	r.CounterVec("reqs_total", "requests", "route").With(`/v1/"x"` + "\n").Inc()
	h := r.Histogram("lat_seconds", "latency", []float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(0.7)
	h.Observe(3)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	var sawHelp, sawType int
	samples := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			sawHelp++
		case strings.HasPrefix(line, "# TYPE "):
			sawType++
		default:
			if !sampleRE.MatchString(line) {
				t.Fatalf("malformed sample line %q", line)
			}
			i := strings.LastIndexByte(line, ' ')
			v, err := strconv.ParseFloat(line[i+1:], 64)
			if err != nil {
				t.Fatalf("unparsable value in %q: %v", line, err)
			}
			samples[line[:i]] = v
		}
	}
	if sawHelp != 4 || sawType != 4 {
		t.Errorf("HELP/TYPE lines = %d/%d, want 4/4", sawHelp, sawType)
	}
	if samples["jobs_total"] != 3 || samples["depth"] != 2 {
		t.Errorf("scalar samples wrong: %v", samples)
	}
	// Label escaping: quote and newline must be escaped in place.
	if samples[`reqs_total{route="/v1/\"x\"\n"}`] != 1 {
		t.Errorf("escaped label sample missing: %v", samples)
	}
	// Histogram exposition: cumulative buckets, +Inf == count, sum.
	wantBuckets := map[string]float64{
		`lat_seconds_bucket{le="0.5"}`:  1,
		`lat_seconds_bucket{le="1"}`:    2,
		`lat_seconds_bucket{le="+Inf"}`: 3,
		"lat_seconds_count":             3,
	}
	for k, want := range wantBuckets {
		if samples[k] != want {
			t.Errorf("%s = %v, want %v", k, samples[k], want)
		}
	}
	if math.Abs(samples["lat_seconds_sum"]-3.9) > 1e-9 {
		t.Errorf("lat_seconds_sum = %v, want 3.9", samples["lat_seconds_sum"])
	}

	// Exposition is deterministic: a second quiet scrape is byte-identical.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("two quiet scrapes differ")
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "n")
	h := r.Histogram("h_seconds", "h", nil)
	v := r.CounterVec("v_total", "v", "i")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lbl := strconv.Itoa(g % 2)
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-4)
				v.With(lbl).Inc()
				if i%100 == 0 {
					_ = r.WritePrometheus(&bytes.Buffer{})
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %v, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
	if v.With("0").Value()+v.With("1").Value() != 8000 {
		t.Error("vec counters lost increments")
	}
}

func TestObsSinkBridgesIntoRegistry(t *testing.T) {
	r := NewRegistry()
	s := NewObsSink(r)
	s.Count("campaign.cache.hits", 3)
	s.Count("campaign.cache.hits", 7)
	s.Count("campaign.cache.hits", 5) // regressions ignored: counters stay monotonic
	s.QueueDepth("campaign.queue", 4)
	s.Gauge("node0", "membw", 0, 0.75)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`obs_counter_total{counter="campaign.cache.hits"} 7`,
		`obs_queue_depth{queue="campaign.queue"} 4`,
		`obs_gauge{subject="node0",name="membw"} 0.75`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
