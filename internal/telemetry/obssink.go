package telemetry

// ObsSink mirrors an obs.Recorder's operational emissions into a
// registry, so the simulation-tier counters the campaign service already
// publishes (via obs CounterSet/QueueDepth/GaugeSet events) appear in the
// same Prometheus scrape as the service-tier metrics. It satisfies
// obs.Sink structurally; install it with Recorder.SetSink.
//
// obs counters carry cumulative totals, not deltas, so Count maps onto
// Counter.SetTotal (monotonic, regressions ignored).
type ObsSink struct {
	counters *CounterVec
	queues   *GaugeVec
	gauges   *GaugeVec
}

// NewObsSink registers the bridge families on r and returns the sink.
// A nil registry yields a nil sink, which obs treats as "no bridge".
func NewObsSink(r *Registry) *ObsSink {
	if r == nil {
		return nil
	}
	return &ObsSink{
		counters: r.CounterVec("obs_counter_total",
			"Cumulative obs recorder counters (CounterSet events), by counter name.", "counter"),
		queues: r.GaugeVec("obs_queue_depth",
			"Latest obs queue-depth samples, by queue name.", "queue"),
		gauges: r.GaugeVec("obs_gauge",
			"Latest obs gauge samples, by subject and gauge name.", "subject", "name"),
	}
}

// Count bridges a cumulative counter sample.
func (s *ObsSink) Count(name string, total float64) {
	if s == nil {
		return
	}
	s.counters.With(name).SetTotal(total)
}

// QueueDepth bridges a queue-depth sample.
func (s *ObsSink) QueueDepth(queue string, depth int) {
	if s == nil {
		return
	}
	s.queues.With(queue).Set(float64(depth))
}

// Gauge bridges a gauge sample. The node index is dropped: operational
// gauges emitted by the service tier are node-less (obs.NoNode).
func (s *ObsSink) Gauge(subject, name string, _ int, value float64) {
	if s == nil {
		return
	}
	s.gauges.With(subject, name).Set(value)
}
