package obs

import (
	"fmt"
	"sort"

	"ensemblekit/internal/trace"
)

// FromTrace reconstructs an instrumentation event stream from a post-hoc
// execution trace. Live recording (SimOptions.Recorder) is richer — it
// sees queue depths, DTL latencies, and fabric flows — but FromTrace lets
// any stored trace.EnsembleTrace (from either backend) open in Perfetto
// and feed the utilization tables: component lifecycles become proc spans,
// stages become B/E pairs, and core allocations become per-node occupancy
// timelines.
func FromTrace(tr *trace.EnsembleTrace) []Event {
	var events []Event
	for _, c := range tr.Components() {
		node := NoNode
		if len(c.Nodes) > 0 {
			node = c.Nodes[0]
		}
		start, end := c.Start, c.End
		for _, step := range c.Steps {
			if e := step.End(); e > end {
				end = e
			}
		}
		if end < start {
			end = start
		}
		if node != NoNode {
			events = append(events, Event{
				T: start, Kind: ResourceAcquire, Subject: fmt.Sprintf("n%d.cores", node),
				Node: node, Node2: NoNode, Value: float64(c.Cores),
			})
		}
		events = append(events, Event{T: start, Kind: ProcStart, Subject: c.Name, Node: node, Node2: NoNode})
		for _, step := range c.Steps {
			for _, st := range step.Stages {
				events = append(events,
					Event{T: st.Start, Kind: StageBegin, Subject: c.Name, Detail: st.Stage.String(), Node: node, Node2: NoNode},
					Event{T: st.End(), Kind: StageEnd, Subject: c.Name, Detail: st.Stage.String(), Node: node, Node2: NoNode, Value: float64(st.Counters.Bytes)},
				)
			}
		}
		events = append(events, Event{T: end, Kind: ProcEnd, Subject: c.Name, Node: node, Node2: NoNode})
		if node != NoNode {
			events = append(events, Event{
				T: end, Kind: ResourceRelease, Subject: fmt.Sprintf("n%d.cores", node),
				Node: node, Node2: NoNode, Value: float64(c.Cores),
			})
		}
	}
	// Interleave the per-component streams into one global timeline; the
	// stable sort keeps each component's own B-before-E emission order at
	// equal timestamps.
	sort.SliceStable(events, func(i, j int) bool { return events[i].T < events[j].T })
	return events
}
