package obs

import (
	"fmt"
	"io"
	"sort"
	"time"

	"ensemblekit/internal/telemetry/tracing"
)

// Span bridge: replays an obs event stream (virtual clock) as completed
// child spans under a parent span (wall clock), so every simulated
// component, stage, DTL transfer, and network flow lands in the job's
// distributed trace. The affine map wall = anchor + scale·virtual
// places the bridged spans inside the parent's window; with
// scale = parentWallDuration / makespan the DES spans tile the parent
// exactly, which is what makes the critical-path stage durations sum to
// the job's measured latency.

// interval is one paired begin/end from the event stream.
type interval struct {
	name, kind string
	subject    string // owning component for stages
	start, end float64
	attrs      []tracing.Attr
}

// BridgeSpans converts events into spans under parent using tr,
// mapping virtual seconds t to anchor + scale·t. Component spans
// (proc-start/end) become parents of their stage spans; DTL, flow, and
// fault events become direct children of parent. Unclosed begins are
// closed at the stream horizon. Returns the number of spans recorded;
// a nil tracer records nothing.
func BridgeSpans(tr *tracing.Tracer, parent tracing.SpanContext, events []Event, anchor time.Time, scale float64) int {
	if tr == nil || len(events) == 0 {
		return 0
	}
	if scale <= 0 {
		scale = 1
	}
	wall := func(t float64) time.Time {
		return anchor.Add(time.Duration(t * scale * float64(time.Second)))
	}

	horizon := 0.0
	for _, ev := range events {
		if ev.T > horizon {
			horizon = ev.T
		}
	}

	var comps, stages, rest []interval
	compOpen := map[string]int{}    // subject -> index into comps (open)
	stageOpen := map[string][]int{} // subject+"\xff"+stage -> stack of open stage indices
	pairOpen := map[string][]int{}  // dtl/flow pairing key -> FIFO of open rest indices

	openComp := func(subject string, t float64, node int) {
		compOpen[subject] = len(comps)
		comps = append(comps, interval{name: subject, kind: "component", subject: subject,
			start: t, end: -1, attrs: []tracing.Attr{tracing.Int("node", node)}})
	}
	for _, ev := range events {
		switch ev.Kind {
		case ProcStart:
			openComp(ev.Subject, ev.T, ev.Node)
		case ProcEnd:
			if i, ok := compOpen[ev.Subject]; ok {
				comps[i].end = ev.T
				delete(compOpen, ev.Subject)
			}
		case StageBegin:
			key := ev.Subject + "\xff" + ev.Detail
			stageOpen[key] = append(stageOpen[key], len(stages))
			stages = append(stages, interval{name: ev.Detail, kind: "stage:" + ev.Detail,
				subject: ev.Subject, start: ev.T, end: -1,
				attrs: []tracing.Attr{tracing.String("component", ev.Subject), tracing.Int("node", ev.Node)}})
		case StageEnd:
			key := ev.Subject + "\xff" + ev.Detail
			if st := stageOpen[key]; len(st) > 0 {
				i := st[len(st)-1]
				stageOpen[key] = st[:len(st)-1]
				stages[i].end = ev.T
				if ev.Value > 0 {
					stages[i].attrs = append(stages[i].attrs, tracing.Float("bytes", ev.Value))
				}
			}
		case PutBegin, GetBegin:
			op := "put"
			if ev.Kind == GetBegin {
				op = "get"
			}
			key := fmt.Sprintf("dtl\xff%s\xff%s\xff%d\xff%d", op, ev.Detail, ev.Node, ev.Node2)
			pairOpen[key] = append(pairOpen[key], len(rest))
			rest = append(rest, interval{name: op + ":" + ev.Detail, kind: "dtl:" + op,
				start: ev.T, end: -1,
				attrs: []tracing.Attr{tracing.String("tier", ev.Detail), tracing.Float("bytes", ev.Value)}})
		case PutEnd, GetEnd:
			op := "put"
			if ev.Kind == GetEnd {
				op = "get"
			}
			key := fmt.Sprintf("dtl\xff%s\xff%s\xff%d\xff%d", op, ev.Detail, ev.Node, ev.Node2)
			if q := pairOpen[key]; len(q) > 0 {
				i := q[0]
				pairOpen[key] = q[1:]
				rest[i].end = ev.T
			}
		case FlowStart:
			key := "flow\xff" + ev.Subject
			pairOpen[key] = append(pairOpen[key], len(rest))
			rest = append(rest, interval{name: ev.Subject, kind: "net:flow",
				start: ev.T, end: -1,
				attrs: []tracing.Attr{tracing.String("link", ev.Subject), tracing.Float("bytes", ev.Value)}})
		case FlowEnd:
			key := "flow\xff" + ev.Subject
			if q := pairOpen[key]; len(q) > 0 {
				i := q[0]
				pairOpen[key] = q[1:]
				rest[i].end = ev.T
			}
		case FaultInject, RetryAttempt, ComponentRestart, MemberDrop:
			name := ev.Kind.String()
			if ev.Detail != "" {
				name += ":" + ev.Detail
			}
			rest = append(rest, interval{name: name, kind: "fault",
				start: ev.T, end: ev.T,
				attrs: []tracing.Attr{tracing.String("subject", ev.Subject), tracing.Float("value", ev.Value)}})
		}
	}

	close := func(ivs []interval) {
		for i := range ivs {
			if ivs[i].end < 0 {
				ivs[i].end = horizon
			}
		}
	}
	close(comps)
	close(stages)
	close(rest)

	// Emit components first so their contexts exist to parent the
	// stages; a stage whose component never emitted proc events hangs
	// directly off the parent.
	n := 0
	compCtx := map[string]tracing.SpanContext{}
	for _, c := range comps {
		sc := tr.SpanAt(parent, c.name, c.kind, wall(c.start), wall(c.end), c.attrs...)
		if _, dup := compCtx[c.subject]; !dup {
			compCtx[c.subject] = sc
		}
		n++
	}
	for _, s := range stages {
		p, ok := compCtx[s.subject]
		if !ok {
			p = parent
		}
		tr.SpanAt(p, s.name, s.kind, wall(s.start), wall(s.end), s.attrs...)
		n++
	}
	for _, r := range rest {
		tr.SpanAt(parent, r.name, r.kind, wall(r.start), wall(r.end), r.attrs...)
		n++
	}
	return n
}

// serviceSpanKinds are the span kinds merged into the Perfetto export;
// the DES-level kinds are skipped because the obs events already render
// them.
var serviceSpanKinds = map[string]bool{
	"server": true, "campaign": true, "job": true, "queue": true, "execute": true,
}

// WriteChromeTraceWithSpans is WriteChromeTrace plus a "service"
// process carrying the service-level spans (request, campaign, job,
// queue, execute), so traceview renders the serving-tier and DES-tier
// timelines in one view. toVirtual maps a span's wall-clock instant
// into virtual seconds (the inverse of the bridge's affine map); spans
// whose kind is DES-level are skipped — the obs events already cover
// them. Each span gets its own thread: service spans overlap (the
// request ends before the campaign), which the trace format's per-track
// LIFO nesting cannot express on one track.
func WriteChromeTraceWithSpans(w io.Writer, events []Event, spans []tracing.SpanData, toVirtual func(time.Time) float64) error {
	doc := buildChrome(events)

	var svc []tracing.SpanData
	for _, d := range spans {
		if serviceSpanKinds[d.Kind] {
			svc = append(svc, d)
		}
	}
	if len(svc) == 0 || toVirtual == nil {
		return encodeChrome(w, doc)
	}
	sort.SliceStable(svc, func(i, k int) bool {
		if !svc[i].Start.Equal(svc[k].Start) {
			return svc[i].Start.Before(svc[k].Start)
		}
		return svc[i].SpanID.String() < svc[k].SpanID.String()
	})

	maxNode := -1
	for _, ev := range events {
		if ev.Node > maxNode {
			maxNode = ev.Node
		}
		if ev.Node2 > maxNode {
			maxNode = ev.Node2
		}
	}
	servicePID := maxNode + 7

	var meta, evs []chromeEvent
	meta = append(meta, chromeEvent{
		Name: "process_name", Ph: "M", TS: 0, Pid: servicePID, Tid: 0,
		Args: &chromeArgs{Name: "service"},
	})
	for i, d := range svc {
		tid := i + 1
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", TS: 0, Pid: servicePID, Tid: tid,
			Args: &chromeArgs{Name: d.Kind + " " + d.Name},
		})
		start, end := toVirtual(d.Start), toVirtual(d.End)
		if end < start {
			end = start
		}
		evs = append(evs,
			chromeEvent{Name: d.Name, Cat: d.Kind, Ph: "B", TS: secondsToTS(start), Pid: servicePID, Tid: tid},
			chromeEvent{Name: d.Name, Cat: d.Kind, Ph: "E", TS: secondsToTS(end), Pid: servicePID, Tid: tid},
		)
	}

	var metaOut, evOut []chromeEvent
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			metaOut = append(metaOut, ev)
		} else {
			evOut = append(evOut, ev)
		}
	}
	metaOut = append(metaOut, meta...)
	evOut = append(evOut, evs...)
	sort.SliceStable(evOut, func(i, k int) bool { return evOut[i].TS < evOut[k].TS })
	doc.TraceEvents = append(metaOut, evOut...)
	return encodeChrome(w, doc)
}
