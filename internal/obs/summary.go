package obs

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// fnum formats a float compactly and deterministically for the summary
// tables.
func fnum(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e6 || v < 1e-3:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// WriteUtilization prints the per-node core-occupancy table: for every
// node the capacity seen, the time-weighted mean and peak cores in use,
// and the fraction of the run the node was busy. This is the table
// `traceview -utilization` shows next to the stage statistics.
func WriteUtilization(w io.Writer, m *Metrics) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "node\tmean cores\tpeak cores\tbusy frac")
	for _, n := range m.NodeList() {
		fmt.Fprintf(tw, "n%d\t%s\t%s\t%s\n",
			n.Node, fnum(n.Cores.MeanOver(0, m.End)), fnum(n.Cores.Peak()),
			fnum(n.Cores.BusyFraction(0, m.End)))
	}
	return tw.Flush()
}

// WriteSummary prints the compact text form of the metrics registry:
// node occupancy, link utilization, DTL traffic, queue peaks, and
// per-component stage totals.
func WriteSummary(w io.Writer, m *Metrics) error {
	fmt.Fprintf(w, "== observability summary ==\n")
	fmt.Fprintf(w, "events analyzed: %d, horizon: %s s\n\n", m.Events, fnum(m.End))

	fmt.Fprintln(w, "-- per-node core occupancy --")
	if err := WriteUtilization(w, m); err != nil {
		return err
	}

	if len(m.Links) > 0 {
		fmt.Fprintln(w, "\n-- fabric links --")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "link\ttransfers\tbytes\tmean flows\tpeak flows")
		for _, l := range m.LinkList() {
			fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\n",
				l.Link, l.Transfers, fnum(l.Bytes),
				fnum(l.Flows.MeanOver(0, m.End)), fnum(l.Flows.Peak()))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(m.DTL) > 0 {
		fmt.Fprintln(w, "\n-- DTL traffic --")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "tier\top\tops\tbytes\ttotal latency (s)")
		for _, d := range m.DTLList() {
			fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\n",
				d.Tier, d.Op, d.Count, fnum(d.Bytes), fnum(d.Seconds))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(m.Queues) > 0 {
		fmt.Fprintln(w, "\n-- queues --")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "queue\tmean depth\tpeak depth")
		for _, q := range m.QueueList() {
			u := m.Queues[q]
			fmt.Fprintf(tw, "%s\t%s\t%s\n", q, fnum(u.MeanOver(0, m.End)), fnum(u.Peak()))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(m.Stages) > 0 {
		fmt.Fprintln(w, "\n-- stage totals --")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "component\tstage\tcount\ttotal (s)\tbytes")
		for _, s := range m.StageList() {
			fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\n",
				s.Component, s.Stage, s.Count, fnum(s.Seconds), fnum(s.Bytes))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(m.Faults) > 0 {
		fmt.Fprintln(w, "\n-- resilience events --")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "event\tcount")
		for _, k := range m.FaultList() {
			fmt.Fprintf(tw, "%s\t%d\n", k, m.Faults[k])
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(m.Counters) > 0 {
		fmt.Fprintln(w, "\n-- counters --")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "counter\tvalue")
		for _, k := range m.CounterList() {
			fmt.Fprintf(tw, "%s\t%s\n", k, fnum(m.Counters[k]))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}
