package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The Chrome trace-event format (the JSON flavour Perfetto's
// ui.perfetto.dev and chrome://tracing both open): a flat array of events
// with phase "B"/"E" duration pairs, "C" counters, and "M" metadata naming
// processes and threads. The exporter maps the virtual topology onto it:
// one trace "process" per cluster node (plus synthetic processes for the
// fabric, queues, and the DTL), one thread per simulated component, and
// counter tracks for core occupancy, link flows, queue depths, and gauges.
//
// Field order in the structs below is the serialization order; keep it
// stable, the golden-file tests depend on it.

type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	TS   float64     `json:"ts"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	Args *chromeArgs `json:"args,omitempty"`
	// Scope is the "s" field of instant ("i") events: "t" scopes the
	// marker to its thread. Empty (and omitted) for all other phases, so
	// pre-existing golden files are unaffected.
	Scope string `json:"s,omitempty"`
}

type chromeArgs struct {
	Name  string   `json:"name,omitempty"`
	Value *float64 `json:"value,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// secondsToTS converts virtual seconds to trace-event microseconds.
func secondsToTS(s float64) float64 { return s * 1e6 }

// chromeBuilder assigns deterministic pids/tids and accumulates events.
type chromeBuilder struct {
	out []chromeEvent

	pidNamed map[int]string // pid -> process name already emitted
	tids     map[int]map[string]int
	nextTid  map[int]int

	// counter levels for running C tracks
	coreLevel map[int]float64
	linkLevel map[string]float64
	dtlLevel  map[string]float64
	openSpans map[[2]int][]chromeEvent // (pid,tid) -> stack of open B events
	horizon   float64
	fabricPID int
	queuePID  int
	dtlPID    int
	orphanPID int
	faultsPID int
}

func (b *chromeBuilder) process(pid int, name string) {
	if _, ok := b.pidNamed[pid]; ok {
		return
	}
	b.pidNamed[pid] = name
	b.out = append(b.out, chromeEvent{
		Name: "process_name", Ph: "M", TS: 0, Pid: pid, Tid: 0,
		Args: &chromeArgs{Name: name},
	})
}

// tid returns the thread id for subject within pid, minting one (with its
// thread_name metadata) on first use.
func (b *chromeBuilder) tid(pid int, subject string) int {
	m, ok := b.tids[pid]
	if !ok {
		m = make(map[string]int)
		b.tids[pid] = m
	}
	if t, ok := m[subject]; ok {
		return t
	}
	b.nextTid[pid]++
	t := b.nextTid[pid]
	m[subject] = t
	b.out = append(b.out, chromeEvent{
		Name: "thread_name", Ph: "M", TS: 0, Pid: pid, Tid: t,
		Args: &chromeArgs{Name: subject},
	})
	return t
}

func (b *chromeBuilder) begin(pid, tid int, name, cat string, t float64) {
	ev := chromeEvent{Name: name, Cat: cat, Ph: "B", TS: secondsToTS(t), Pid: pid, Tid: tid}
	b.out = append(b.out, ev)
	key := [2]int{pid, tid}
	b.openSpans[key] = append(b.openSpans[key], ev)
}

func (b *chromeBuilder) end(pid, tid int, name, cat string, t float64) {
	key := [2]int{pid, tid}
	stack := b.openSpans[key]
	if len(stack) == 0 {
		return // unmatched end: drop rather than corrupt the track
	}
	b.openSpans[key] = stack[:len(stack)-1]
	b.out = append(b.out, chromeEvent{Name: name, Cat: cat, Ph: "E", TS: secondsToTS(t), Pid: pid, Tid: tid})
}

// instant emits a thread-scoped instant marker ("i" phase): the Perfetto
// rendering of point events like injected faults, retries, and restarts.
func (b *chromeBuilder) instant(pid, tid int, name, cat string, t float64) {
	b.out = append(b.out, chromeEvent{
		Name: name, Cat: cat, Ph: "i", TS: secondsToTS(t), Pid: pid, Tid: tid, Scope: "t",
	})
}

func (b *chromeBuilder) counter(pid int, name string, t, v float64) {
	val := v
	b.out = append(b.out, chromeEvent{
		Name: name, Ph: "C", TS: secondsToTS(t), Pid: pid, Tid: 0,
		Args: &chromeArgs{Value: &val},
	})
}

// BuildChromeEvents converts an obs event stream into Chrome trace events.
// The result is sorted by timestamp with metadata records first; every "B"
// has a matching "E" (spans still open at the end of the stream are closed
// at the horizon).
func buildChrome(events []Event) chromeTrace {
	maxNode := -1
	subjectNode := make(map[string]int)
	for _, ev := range events {
		if ev.Node > maxNode {
			maxNode = ev.Node
		}
		if ev.Node2 > maxNode {
			maxNode = ev.Node2
		}
		switch ev.Kind {
		case ProcStart, ProcEnd, StageBegin, StageEnd:
			if ev.Node != NoNode {
				if _, ok := subjectNode[ev.Subject]; !ok {
					subjectNode[ev.Subject] = ev.Node
				}
			}
		}
	}
	b := &chromeBuilder{
		pidNamed:  make(map[int]string),
		tids:      make(map[int]map[string]int),
		nextTid:   make(map[int]int),
		coreLevel: make(map[int]float64),
		linkLevel: make(map[string]float64),
		dtlLevel:  make(map[string]float64),
		openSpans: make(map[[2]int][]chromeEvent),
		fabricPID: maxNode + 2,
		queuePID:  maxNode + 3,
		dtlPID:    maxNode + 4,
		orphanPID: maxNode + 5,
		faultsPID: maxNode + 6,
	}
	nodePID := func(n int) int { return n + 1 }
	// trackOf places component subjects on their node's process.
	trackOf := func(ev Event) (int, int) {
		n := ev.Node
		if n == NoNode {
			if sn, ok := subjectNode[ev.Subject]; ok {
				n = sn
			}
		}
		pid := b.orphanPID
		if n != NoNode {
			pid = nodePID(n)
			b.process(pid, fmt.Sprintf("node%d", n))
		} else {
			b.process(pid, "unplaced")
		}
		return pid, b.tid(pid, ev.Subject)
	}

	for _, ev := range events {
		if ev.T > b.horizon {
			b.horizon = ev.T
		}
		switch ev.Kind {
		case ProcStart:
			pid, tid := trackOf(ev)
			b.begin(pid, tid, ev.Subject, "proc", ev.T)
		case ProcEnd:
			pid, tid := trackOf(ev)
			b.end(pid, tid, ev.Subject, "proc", ev.T)
		case StageBegin:
			pid, tid := trackOf(ev)
			b.begin(pid, tid, ev.Detail, "stage", ev.T)
		case StageEnd:
			pid, tid := trackOf(ev)
			b.end(pid, tid, ev.Detail, "stage", ev.T)
		case ResourceAcquire, ResourceRelease:
			if ev.Node == NoNode {
				continue
			}
			pid := nodePID(ev.Node)
			b.process(pid, fmt.Sprintf("node%d", ev.Node))
			d := ev.Value
			if ev.Kind == ResourceRelease {
				d = -d
			}
			b.coreLevel[ev.Node] += d
			b.counter(pid, "cores in use", ev.T, b.coreLevel[ev.Node])
		case QueueDepth:
			b.process(b.queuePID, "queues")
			b.counter(b.queuePID, ev.Subject, ev.T, ev.Value)
		case FlowStart, FlowEnd:
			b.process(b.fabricPID, "fabric")
			d := 1.0
			if ev.Kind == FlowEnd {
				d = -1
			}
			b.linkLevel[ev.Subject] += d
			b.counter(b.fabricPID, ev.Subject, ev.T, b.linkLevel[ev.Subject])
		case PutBegin, PutEnd, GetBegin, GetEnd:
			b.process(b.dtlPID, "dtl")
			op := "put"
			d := 1.0
			switch ev.Kind {
			case PutEnd:
				d = -1
			case GetBegin:
				op = "get"
			case GetEnd:
				op, d = "get", -1
			}
			key := ev.Detail + " " + op + "s in flight"
			b.dtlLevel[key] += d
			b.counter(b.dtlPID, key, ev.T, b.dtlLevel[key])
		case GaugeSet:
			if ev.Node != NoNode {
				pid := nodePID(ev.Node)
				b.process(pid, fmt.Sprintf("node%d", ev.Node))
				b.counter(pid, ev.Subject+"."+ev.Detail, ev.T, ev.Value)
			} else {
				b.process(b.queuePID, "queues")
				b.counter(b.queuePID, ev.Subject+"."+ev.Detail, ev.T, ev.Value)
			}
		case FaultInject, RetryAttempt, ComponentRestart, MemberDrop:
			// Faults, retries, restarts, and drops get their own process
			// with one track per subject, so resilience activity reads as
			// a distinct swimlane over the execution below it.
			b.process(b.faultsPID, "faults")
			tid := b.tid(b.faultsPID, ev.Subject)
			name := ev.Kind.String()
			if ev.Detail != "" {
				name += ":" + ev.Detail
			}
			b.instant(b.faultsPID, tid, name, "fault", ev.T)
		}
	}
	// Close spans still open (components that never finished) at the
	// horizon so every B has an E.
	keys := make([][2]int, 0, len(b.openSpans))
	for k := range b.openSpans {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		for i := len(b.openSpans[k]) - 1; i >= 0; i-- {
			open := b.openSpans[k][i]
			b.out = append(b.out, chromeEvent{
				Name: open.Name, Cat: open.Cat, Ph: "E",
				TS: secondsToTS(b.horizon), Pid: k[0], Tid: k[1],
			})
		}
	}
	// Metadata first, then events in non-decreasing timestamp order.
	sort.SliceStable(b.out, func(i, j int) bool {
		mi, mj := b.out[i].Ph == "M", b.out[j].Ph == "M"
		if mi != mj {
			return mi
		}
		if mi {
			return false // keep metadata in emission order
		}
		return b.out[i].TS < b.out[j].TS
	})
	return chromeTrace{TraceEvents: b.out, DisplayTimeUnit: "ms"}
}

// WriteChromeTrace serializes the event stream in the Chrome trace-event
// JSON format understood by ui.perfetto.dev and chrome://tracing: one
// track per node (plus fabric/queue/DTL tracks), B/E duration pairs per
// component stage, and counter tracks for occupancy and queue depths.
// Field ordering is stable and timestamps are emitted sorted.
func WriteChromeTrace(w io.Writer, events []Event) error {
	return encodeChrome(w, buildChrome(events))
}

// encodeChrome serializes a trace document with the stable indentation
// the golden files pin.
func encodeChrome(w io.Writer, doc chromeTrace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// ValidateChromeTrace structurally checks serialized Chrome trace JSON:
// parseable, timestamps sorted non-decreasing, every "B" matched by an "E"
// on the same track, and every referenced process named by exactly one
// process_name metadata record. It is the acceptance gate behind
// `ensemblectl -obs`.
func ValidateChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Args *struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("obs: chrome trace not parseable: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("obs: chrome trace has no events")
	}
	lastTS := 0.0
	sawEvent := false
	procNames := make(map[int]string)
	pidsSeen := make(map[int]bool)
	depth := make(map[[2]int]int)
	for i, ev := range doc.TraceEvents {
		pidsSeen[ev.Pid] = true
		switch ev.Ph {
		case "M":
			if sawEvent {
				return fmt.Errorf("obs: metadata record %d after trace events", i)
			}
			if ev.Name == "process_name" {
				if prev, dup := procNames[ev.Pid]; dup {
					return fmt.Errorf("obs: pid %d named twice (%q, %q)", ev.Pid, prev, ev.Args.Name)
				}
				if ev.Args == nil || ev.Args.Name == "" {
					return fmt.Errorf("obs: process_name for pid %d has no name", ev.Pid)
				}
				procNames[ev.Pid] = ev.Args.Name
			}
		case "B", "E", "C", "i":
			if sawEvent && ev.TS < lastTS {
				return fmt.Errorf("obs: event %d: timestamp %v before %v (unsorted)", i, ev.TS, lastTS)
			}
			sawEvent = true
			lastTS = ev.TS
			key := [2]int{ev.Pid, ev.Tid}
			switch ev.Ph {
			case "B":
				depth[key]++
			case "E":
				depth[key]--
				if depth[key] < 0 {
					return fmt.Errorf("obs: event %d: E without matching B on pid=%d tid=%d", i, ev.Pid, ev.Tid)
				}
			}
		default:
			return fmt.Errorf("obs: event %d: unknown phase %q", i, ev.Ph)
		}
	}
	for key, d := range depth {
		if d != 0 {
			return fmt.Errorf("obs: %d unclosed B event(s) on pid=%d tid=%d", d, key[0], key[1])
		}
	}
	for pid := range pidsSeen {
		if _, ok := procNames[pid]; !ok {
			return fmt.Errorf("obs: pid %d has events but no process_name metadata", pid)
		}
	}
	return nil
}
