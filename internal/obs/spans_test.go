package obs

import (
	"bytes"
	"context"
	"math"
	"testing"
	"time"

	"ensemblekit/internal/telemetry/tracing"
)

// recordedStream builds a small synthetic run: one component with two
// stages, a DTL put, a network flow, and a fault.
func recordedStream() []Event {
	clock := 0.0
	r := NewRecorder(func() float64 { return clock })
	r.ProcStart("sim[0]", 0)
	r.StageBegin("sim[0]", "S", 0)
	clock = 4
	r.StageEnd("sim[0]", "S", 0, 0)
	r.StageBegin("sim[0]", "W", 0)
	r.PutBegin("burst-buffer", 0, 1<<20)
	clock = 6
	r.PutEnd("burst-buffer", 0, 1<<20)
	r.StageEnd("sim[0]", "W", 0, 1<<20)
	r.FlowStart("n0->n1", 0, 1, 1<<20)
	clock = 8
	r.FlowEnd("n0->n1", 0, 1, 1<<20)
	r.Fault("sim[0]", "staging", 0, 1)
	clock = 10
	r.ProcEnd("sim[0]", 0)
	return r.Events()
}

func TestBridgeSpans(t *testing.T) {
	tr := tracing.NewTracer(tracing.NewStore(0, 0))
	_, exec := tr.StartSpan(context.Background(), "execute", "execute")
	anchor := time.Unix(1000, 0)
	// 10 virtual seconds mapped onto 2 wall seconds.
	n := BridgeSpans(tr, exec.Context(), recordedStream(), anchor, 0.2)
	exec.EndAt(anchor.Add(2 * time.Second))

	// component + 2 stages + put + flow + fault = 6 bridged spans.
	if n != 6 {
		t.Fatalf("bridged %d spans, want 6", n)
	}
	spans := tr.Store().Spans(exec.Context().TraceID)
	if len(spans) != 7 {
		t.Fatalf("stored %d spans, want 7", len(spans))
	}
	byName := map[string]tracing.SpanData{}
	for _, d := range spans {
		byName[d.Name] = d
	}
	comp := byName["sim[0]"]
	if comp.Kind != "component" || comp.Parent != exec.Context().SpanID {
		t.Fatalf("component span wrong: %+v", comp)
	}
	// Virtual [0,10] maps to wall [anchor, anchor+2s].
	if !comp.Start.Equal(anchor) || !comp.End.Equal(anchor.Add(2*time.Second)) {
		t.Fatalf("component window not scaled: %v..%v", comp.Start, comp.End)
	}
	s := byName["S"]
	if s.Kind != "stage:S" || s.Parent != comp.SpanID {
		t.Fatalf("stage span not under component: %+v", s)
	}
	if got := s.End.Sub(s.Start); got != 800*time.Millisecond {
		t.Fatalf("stage S wall duration = %v, want 800ms", got)
	}
	if byName["put:burst-buffer"].Kind != "dtl:put" {
		t.Fatalf("dtl span missing: %+v", byName)
	}
	if byName["n0->n1"].Kind != "net:flow" {
		t.Fatalf("flow span missing: %+v", byName)
	}
	f := byName["fault:staging"]
	if f.Kind != "fault" || !f.Start.Equal(f.End) {
		t.Fatalf("fault span wrong: %+v", f)
	}
	// Depth: execute -> component -> stage = 3 levels inside this trace.
	if got := tracing.Depth(spans); got != 3 {
		t.Fatalf("Depth = %d, want 3", got)
	}
}

func TestBridgeSpansClosesUnfinishedAtHorizon(t *testing.T) {
	clock := 0.0
	r := NewRecorder(func() float64 { return clock })
	r.ProcStart("anl[0]", 1)
	r.StageBegin("anl[0]", "A", 1)
	clock = 5
	r.Gauge("anl[0]", "mem", 1, 1) // horizon advances; stage never ends

	tr := tracing.NewTracer(tracing.NewStore(0, 0))
	_, exec := tr.StartSpan(context.Background(), "execute", "execute")
	anchor := time.Unix(0, 0)
	BridgeSpans(tr, exec.Context(), r.Events(), anchor, 1)
	exec.End()
	spans := tr.Store().Spans(exec.Context().TraceID)
	for _, d := range spans {
		if d.End.Before(d.Start) {
			t.Fatalf("span %q ends before it starts: %+v", d.Name, d)
		}
		if d.Name == "A" && !d.End.Equal(anchor.Add(5*time.Second)) {
			t.Fatalf("unclosed stage not clipped to horizon: %+v", d)
		}
	}
}

func TestBridgeSpansNilTracer(t *testing.T) {
	if n := BridgeSpans(nil, tracing.SpanContext{}, recordedStream(), time.Time{}, 1); n != 0 {
		t.Fatalf("nil tracer bridged %d spans", n)
	}
}

func TestWriteChromeTraceWithSpans(t *testing.T) {
	events := recordedStream()
	tr := tracing.NewTracer(tracing.NewStore(0, 0))
	ctx, req := tr.StartSpan(context.Background(), "POST /v1/campaigns", "server")
	ctx, job := tr.StartSpan(ctx, "job abc", "job")
	_, exec := tr.StartSpan(ctx, "execute", "execute")
	anchor := time.Unix(1000, 0)
	BridgeSpans(tr, exec.Context(), events, anchor, 0.2)
	exec.EndAt(anchor.Add(2 * time.Second))
	job.EndAt(anchor.Add(2 * time.Second))
	req.EndAt(anchor.Add(2 * time.Second))
	spans := tr.Store().Spans(req.Context().TraceID)

	toVirtual := func(wt time.Time) float64 { return wt.Sub(anchor).Seconds() / 0.2 }
	var buf bytes.Buffer
	if err := WriteChromeTraceWithSpans(&buf, events, spans, toVirtual); err != nil {
		t.Fatalf("WriteChromeTraceWithSpans: %v", err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	out := buf.String()
	for _, want := range []string{`"service"`, `"job abc"`, `"POST /v1/campaigns"`, `"sim[0]"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("merged trace missing %s:\n%s", want, out)
		}
	}

	// Without service spans (or mapping) the output degrades to the
	// plain export byte-for-byte.
	var plain, degraded bytes.Buffer
	if err := WriteChromeTrace(&plain, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTraceWithSpans(&degraded, events, nil, toVirtual); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), degraded.Bytes()) {
		t.Fatal("no-span merge diverges from WriteChromeTrace")
	}
}

func TestBridgeScaleMapsMakespanOntoWallWindow(t *testing.T) {
	// The invariant the critical path depends on: with
	// scale = wallDuration/makespan the bridged spans tile the parent.
	events := recordedStream()
	makespan := 10.0
	wallDur := 3.5
	tr := tracing.NewTracer(tracing.NewStore(0, 0))
	_, exec := tr.StartSpan(context.Background(), "execute", "execute")
	anchor := time.Unix(500, 0)
	BridgeSpans(tr, exec.Context(), events, anchor, wallDur/makespan)
	exec.EndAt(anchor.Add(time.Duration(wallDur * float64(time.Second))))
	spans := tr.Store().Spans(exec.Context().TraceID)
	var comp tracing.SpanData
	for _, d := range spans {
		if d.Kind == "component" {
			comp = d
		}
	}
	if got := comp.End.Sub(comp.Start).Seconds(); math.Abs(got-wallDur) > 1e-9 {
		t.Fatalf("component wall duration = %v, want %v", got, wallDur)
	}
}
