package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ensemblekit/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// twoMemberTrace builds a small deterministic 2-member ensemble trace:
// member 0 co-located on node 0, member 1 split across nodes 1 and 2.
func twoMemberTrace() *trace.EnsembleTrace {
	build := func(name string, kind trace.Kind, node, cores int, start float64, stages []trace.Stage, durs []float64, bytesPerStep int64) *trace.ComponentTrace {
		c := &trace.ComponentTrace{Name: name, Kind: kind, Nodes: []int{node}, Cores: cores, Start: start}
		t := start
		for i := 0; i < 2; i++ {
			step := trace.StepRecord{Index: i}
			for j, s := range stages {
				rec := trace.StageRecord{Stage: s, Start: t, Duration: durs[j]}
				if s == trace.StageW || s == trace.StageR {
					rec.Counters.Bytes = bytesPerStep
				}
				t += durs[j]
				step.Stages = append(step.Stages, rec)
			}
			c.Steps = append(c.Steps, step)
		}
		c.End = t
		return c
	}
	return &trace.EnsembleTrace{
		Backend: "simulated",
		Config:  "golden-2m",
		Members: []*trace.MemberTrace{
			{
				Index:      0,
				Simulation: build("m0.sim", trace.KindSimulation, 0, 16, 0, trace.SimulationStages(), []float64{10, 1, 0.5}, 1<<20),
				Analyses: []*trace.ComponentTrace{
					build("m0.ana0", trace.KindAnalysis, 0, 8, 0.5, trace.AnalysisStages(), []float64{0.5, 8, 2.5}, 1<<20),
				},
			},
			{
				Index:      1,
				Simulation: build("m1.sim", trace.KindSimulation, 1, 16, 0, trace.SimulationStages(), []float64{10, 0, 1.5}, 1<<21),
				Analyses: []*trace.ComponentTrace{
					build("m1.ana0", trace.KindAnalysis, 2, 8, 1.5, trace.AnalysisStages(), []float64{1.5, 9, 0.5}, 1<<21),
				},
			},
		},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/obs -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden file; run go test ./internal/obs -update and inspect the diff", name)
	}
}

func TestPerfettoGolden(t *testing.T) {
	events := FromTrace(twoMemberTrace())
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("generated trace fails structural validation: %v", err)
	}
	checkGolden(t, "perfetto_2member.golden.json", buf.Bytes())
}

func TestSummaryGolden(t *testing.T) {
	m := Analyze(FromTrace(twoMemberTrace()))
	var buf bytes.Buffer
	if err := WriteSummary(&buf, m); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "summary_2member.golden.txt", buf.Bytes())
}

func TestPerfettoDeterministic(t *testing.T) {
	events := FromTrace(twoMemberTrace())
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two exports of the same events differ (field or track ordering unstable)")
	}
}

func TestFromTraceTimelines(t *testing.T) {
	m := Analyze(FromTrace(twoMemberTrace()))
	if len(m.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(m.Nodes))
	}
	// Node 0 holds the co-located member: 16+8 cores at peak.
	if got := m.Nodes[0].Cores.Peak(); got != 24 {
		t.Errorf("node0 peak cores = %v, want 24", got)
	}
	if got := m.Nodes[1].Cores.Peak(); got != 16 {
		t.Errorf("node1 peak cores = %v, want 16", got)
	}
	if got := m.Nodes[2].Cores.Peak(); got != 8 {
		t.Errorf("node2 peak cores = %v, want 8", got)
	}
	// Stage totals: every component recorded 3 distinct stages.
	if len(m.Stages) != 4*3 {
		t.Errorf("stage groups = %d, want 12", len(m.Stages))
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":    `{`,
		"empty":       `{"traceEvents":[]}`,
		"unsorted":    `{"traceEvents":[{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"node0"}},{"name":"a","ph":"B","ts":5,"pid":1,"tid":1},{"name":"a","ph":"E","ts":4,"pid":1,"tid":1}]}`,
		"unmatched B": `{"traceEvents":[{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"node0"}},{"name":"a","ph":"B","ts":1,"pid":1,"tid":1}]}`,
		"orphan E":    `{"traceEvents":[{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"node0"}},{"name":"a","ph":"E","ts":1,"pid":1,"tid":1}]}`,
		"unnamed pid": `{"traceEvents":[{"name":"a","ph":"B","ts":1,"pid":9,"tid":1},{"name":"a","ph":"E","ts":2,"pid":9,"tid":1}]}`,
		"late meta":   `{"traceEvents":[{"name":"a","ph":"B","ts":1,"pid":1,"tid":1},{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"node0"}},{"name":"a","ph":"E","ts":2,"pid":1,"tid":1}]}`,
		"double name": `{"traceEvents":[{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"a"}},{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"b"}}]}`,
		"bad phase":   `{"traceEvents":[{"name":"a","ph":"X","ts":1,"pid":1,"tid":1}]}`,
	}
	for name, data := range cases {
		if err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: validation should fail", name)
		}
	}
}
