package obs

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestUtilizationAccumulator(t *testing.T) {
	var u Utilization
	u.Set(0, 2)  // 2 cores over [0,4)
	u.Set(4, 6)  // 6 cores over [4,6)
	u.Add(6, -6) // idle over [6,10)
	u.advance(10)

	if !almost(u.Peak(), 6) {
		t.Errorf("peak = %v, want 6", u.Peak())
	}
	// Integral: 2*4 + 6*2 = 20 over 10s -> mean 2.
	if got := u.MeanOver(0, 10); !almost(got, 2) {
		t.Errorf("mean = %v, want 2", got)
	}
	// Busy over [0,6) of 10.
	if got := u.BusyFraction(0, 10); !almost(got, 0.6) {
		t.Errorf("busy = %v, want 0.6", got)
	}
	if n := len(u.Samples()); n != 3 {
		t.Errorf("samples = %d, want 3", n)
	}
	if first, last := u.Span(); first != 0 || last != 10 {
		t.Errorf("span = [%v,%v], want [0,10]", first, last)
	}
}

func TestUtilizationExtendsPastLastChange(t *testing.T) {
	var u Utilization
	u.Set(0, 4)
	// Horizon beyond the last sample: level holds.
	if got := u.MeanOver(0, 8); !almost(got, 4) {
		t.Errorf("mean = %v, want 4", got)
	}
	if got := u.BusyFraction(0, 8); !almost(got, 1) {
		t.Errorf("busy = %v, want 1", got)
	}
	if u.MeanOver(5, 5) != 0 {
		t.Error("degenerate window should be 0")
	}
}

// TestUtilizationEdgeWindows pins the accumulator's behavior on the
// degenerate windows the resource ledgers can hand it: an accumulator
// that never saw a sample, zero-width and inverted windows, and a
// window entirely beyond the last sample.
func TestUtilizationEdgeWindows(t *testing.T) {
	var empty Utilization
	if got := empty.MeanOver(0, 10); got != 0 {
		t.Errorf("empty MeanOver = %v, want 0", got)
	}
	if got := empty.BusyFraction(0, 10); got != 0 {
		t.Errorf("empty BusyFraction = %v, want 0", got)
	}
	if got := empty.Area(); got != 0 {
		t.Errorf("empty Area = %v, want 0", got)
	}
	if n := len(empty.Samples()); n != 0 {
		t.Errorf("empty Samples = %d entries, want 0", n)
	}

	var u Utilization
	u.Set(0, 3)
	u.Set(4, 0)
	// Zero-width and inverted windows are 0, not NaN or negative.
	for _, w := range [][2]float64{{2, 2}, {7, 3}} {
		if got := u.MeanOver(w[0], w[1]); got != 0 {
			t.Errorf("MeanOver(%v, %v) = %v, want 0", w[0], w[1], got)
		}
		if got := u.BusyFraction(w[0], w[1]); got != 0 {
			t.Errorf("BusyFraction(%v, %v) = %v, want 0", w[0], w[1], got)
		}
	}
	// Window entirely beyond the last sample: the final (zero) level
	// extrapolates, diluting the recorded area over the wider window.
	if got := u.MeanOver(0, 12); !almost(got, 1) {
		t.Errorf("MeanOver past last sample = %v, want 1", got)
	}
	if got := u.BusyFraction(0, 12); !almost(got, 4.0/12) {
		t.Errorf("BusyFraction past last sample = %v, want 1/3", got)
	}
	// A final positive level keeps accruing busy time past the last sample.
	var v Utilization
	v.Set(0, 2)
	if got := v.BusyFraction(0, 10); !almost(got, 1) {
		t.Errorf("BusyFraction with held positive level = %v, want 1", got)
	}
}

// TestUtilizationSamplesIsACopy guards against the aliasing leak the
// accessor used to have: mutating or appending to the returned slice
// must not corrupt the accumulator's own timeline.
func TestUtilizationSamplesIsACopy(t *testing.T) {
	var u Utilization
	u.Set(0, 1)
	u.Set(2, 5)

	s := u.Samples()
	s[0].Level = 99
	_ = append(s, Sample{T: 3, Level: 7})

	again := u.Samples()
	if len(again) != 2 {
		t.Fatalf("samples = %d entries after caller append, want 2", len(again))
	}
	if again[0].Level != 1 || again[1].Level != 5 {
		t.Fatalf("samples mutated through the accessor: %+v", again)
	}
}

// TestUtilizationArea pins the exact-integral accessor the ledgers use:
// Area equals MeanOver times the window without the division round-trip.
func TestUtilizationArea(t *testing.T) {
	var u Utilization
	u.Add(1, 4)  // 4 cores over [1,3)
	u.Add(3, -4) // idle from 3
	u.advance(10)
	if got := u.Area(); !almost(got, 8) {
		t.Errorf("Area = %v, want 8", got)
	}
	if got, want := u.Area(), u.MeanOver(1, 10)*9; !almost(got, want) {
		t.Errorf("Area = %v, MeanOver*width = %v", got, want)
	}
}

func TestAnalyzeNodeAndLinkTimelines(t *testing.T) {
	events := []Event{
		{T: 0, Kind: ResourceAcquire, Subject: "n0.cores", Node: 0, Node2: NoNode, Value: 16},
		{T: 0, Kind: ResourceAcquire, Subject: "n1.cores", Node: 1, Node2: NoNode, Value: 8},
		{T: 1, Kind: FlowStart, Subject: "n0->n1", Node: 0, Node2: 1, Value: 1000},
		{T: 2, Kind: QueueDepth, Subject: "m0.queue", Node: NoNode, Node2: NoNode, Value: 3},
		{T: 3, Kind: FlowEnd, Subject: "n0->n1", Node: 0, Node2: 1, Value: 1000},
		{T: 4, Kind: ResourceRelease, Subject: "n1.cores", Node: 1, Node2: NoNode, Value: 8},
		{T: 8, Kind: ResourceRelease, Subject: "n0.cores", Node: 0, Node2: NoNode, Value: 16},
	}
	m := Analyze(events)
	if m.End != 8 || m.Events != len(events) {
		t.Fatalf("horizon = %v events = %d", m.End, m.Events)
	}
	nodes := m.NodeList()
	if len(nodes) != 2 || nodes[0].Node != 0 || nodes[1].Node != 1 {
		t.Fatalf("unexpected node list: %+v", nodes)
	}
	if got := nodes[0].Cores.MeanOver(0, 8); !almost(got, 16) {
		t.Errorf("node0 mean cores = %v, want 16", got)
	}
	if got := nodes[1].Cores.MeanOver(0, 8); !almost(got, 4) {
		t.Errorf("node1 mean cores = %v, want 4 (8 cores over half the run)", got)
	}
	links := m.LinkList()
	if len(links) != 1 || links[0].Transfers != 1 || !almost(links[0].Bytes, 1000) {
		t.Fatalf("unexpected links: %+v", links)
	}
	// One flow over [1,3) of an 8s horizon.
	if got := links[0].Flows.MeanOver(0, 8); !almost(got, 0.25) {
		t.Errorf("link mean flows = %v, want 0.25", got)
	}
	if q := m.Queues["m0.queue"]; q == nil || q.Peak() != 3 {
		t.Errorf("queue timeline missing or wrong: %+v", q)
	}
}

func TestAnalyzeStagesAndDTL(t *testing.T) {
	events := []Event{
		{T: 0, Kind: StageBegin, Subject: "m0.sim", Detail: "S", Node: 0, Node2: NoNode},
		{T: 5, Kind: StageEnd, Subject: "m0.sim", Detail: "S", Node: 0, Node2: NoNode},
		{T: 5, Kind: PutBegin, Subject: "dtl", Detail: "dimes", Node: 0, Node2: NoNode, Value: 100},
		{T: 6, Kind: PutEnd, Subject: "dtl", Detail: "dimes", Node: 0, Node2: NoNode, Value: 100},
		{T: 6, Kind: GetBegin, Subject: "dtl", Detail: "dimes", Node: 0, Node2: 1, Value: 100},
		{T: 8, Kind: GetEnd, Subject: "dtl", Detail: "dimes", Node: 0, Node2: 1, Value: 100},
		{T: 8, Kind: StageBegin, Subject: "m0.sim", Detail: "S", Node: 0, Node2: NoNode},
		{T: 10, Kind: StageEnd, Subject: "m0.sim", Detail: "S", Node: 0, Node2: NoNode},
	}
	m := Analyze(events)
	stages := m.StageList()
	if len(stages) != 1 {
		t.Fatalf("stages = %+v", stages)
	}
	if stages[0].Count != 2 || !almost(stages[0].Seconds, 7) {
		t.Errorf("stage S: count=%d seconds=%v, want 2 and 7", stages[0].Count, stages[0].Seconds)
	}
	dtl := m.DTLList()
	if len(dtl) != 2 {
		t.Fatalf("dtl = %+v", dtl)
	}
	// Sorted: get before put.
	if dtl[0].Op != "get" || !almost(dtl[0].Seconds, 2) || !almost(dtl[0].Bytes, 100) {
		t.Errorf("get stats wrong: %+v", dtl[0])
	}
	if dtl[1].Op != "put" || !almost(dtl[1].Seconds, 1) || dtl[1].Count != 1 {
		t.Errorf("put stats wrong: %+v", dtl[1])
	}
}

func TestAnalyzeGauges(t *testing.T) {
	m := Analyze([]Event{
		{T: 0, Kind: GaugeSet, Subject: "node0", Detail: "membw", Node: 0, Node2: NoNode, Value: 0.25},
		{T: 4, Kind: GaugeSet, Subject: "node0", Detail: "membw", Node: 0, Node2: NoNode, Value: 0.75},
	})
	g := m.Gauges["node0/membw"]
	if g == nil {
		t.Fatal("gauge missing")
	}
	if !almost(g.Peak(), 0.75) || !almost(g.MeanOver(0, 4), 0.25) {
		t.Errorf("gauge peak=%v mean=%v", g.Peak(), g.MeanOver(0, 4))
	}
}

func TestLinkLabel(t *testing.T) {
	if LinkLabel(0, 3) != "n0->n3" {
		t.Errorf("LinkLabel = %q", LinkLabel(0, 3))
	}
}
