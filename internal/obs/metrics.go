package obs

import (
	"fmt"
	"sort"
)

// Sample is one point of a piecewise-constant timeline: Level holds from T
// until the next sample.
type Sample struct {
	T     float64
	Level float64
}

// Utilization is a time-weighted accumulator over a piecewise-constant
// level (cores in use, flows in flight, queue depth). It integrates
// level*dt so mean utilization is exact regardless of sampling cadence,
// tracks the peak, and keeps the full timeline for export.
type Utilization struct {
	// Capacity is the level ceiling used for normalization (0 = unknown).
	Capacity float64

	level   float64
	started bool
	first   float64
	last    float64
	area    float64 // integral of level dt
	busy    float64 // time with level > 0
	peak    float64
	samples []Sample
}

// advance integrates the current level up to time t.
func (u *Utilization) advance(t float64) {
	if !u.started {
		u.started = true
		u.first = t
		u.last = t
		return
	}
	if t < u.last {
		t = u.last // clamp: timelines never run backwards
	}
	dt := t - u.last
	u.area += u.level * dt
	if u.level > 0 {
		u.busy += dt
	}
	u.last = t
}

// Set moves the level to v at time t.
func (u *Utilization) Set(t, v float64) {
	u.advance(t)
	u.level = v
	if v > u.peak {
		u.peak = v
	}
	u.samples = append(u.samples, Sample{T: t, Level: v})
}

// Add shifts the level by delta at time t.
func (u *Utilization) Add(t, delta float64) { u.Set(t, u.level+delta) }

// Level returns the current level.
func (u *Utilization) Level() float64 { return u.level }

// Peak returns the maximum level observed.
func (u *Utilization) Peak() float64 { return u.peak }

// Span returns the observed time window [first, last].
func (u *Utilization) Span() (float64, float64) { return u.first, u.last }

// Samples returns a copy of the recorded timeline (piecewise-constant
// changes). Callers may sort or mutate the returned slice freely without
// corrupting the accumulator.
func (u *Utilization) Samples() []Sample {
	out := make([]Sample, len(u.samples))
	copy(out, u.samples)
	return out
}

// Area returns the exact integral of level·dt over the observed window,
// without the divide/multiply round-trip MeanOver would introduce. This
// is the quantity resource ledgers account in core-seconds.
func (u *Utilization) Area() float64 { return u.area }

// MeanOver returns the time-weighted mean level over [t0, t1], counting
// the final level as holding from the last change to t1.
func (u *Utilization) MeanOver(t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	area := u.area
	if t1 > u.last {
		area += u.level * (t1 - u.last)
	}
	return area / (t1 - t0)
}

// Mean returns the time-weighted mean level over the observed window.
func (u *Utilization) Mean() float64 { return u.MeanOver(u.first, u.last) }

// BusyFraction returns the fraction of [t0, t1] with a positive level.
func (u *Utilization) BusyFraction(t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	busy := u.busy
	if t1 > u.last && u.level > 0 {
		busy += t1 - u.last
	}
	return busy / (t1 - t0)
}

// NodeUsage aggregates the occupancy of one node.
type NodeUsage struct {
	// Node is the node index.
	Node int
	// Cores is the core-occupancy timeline.
	Cores Utilization
}

// LinkUsage aggregates one directed fabric link (src->dst pair observed in
// flow events).
type LinkUsage struct {
	// Link is the label ("n0->n1").
	Link string
	// Src and Dst are the endpoint indexes.
	Src, Dst int
	// Flows is the flows-in-flight timeline.
	Flows Utilization
	// Bytes is the total bytes delivered over the link.
	Bytes float64
	// Transfers counts completed flows.
	Transfers int
}

// StageTotal accumulates time and bytes per (component, stage).
type StageTotal struct {
	Component string
	Stage     string
	Node      int
	Count     int
	Seconds   float64
	Bytes     float64
}

// DTLStat aggregates one direction of staging traffic on one tier.
type DTLStat struct {
	Tier    string
	Op      string // "put" or "get"
	Count   int
	Bytes   float64
	Seconds float64 // summed operation latency
}

// Metrics is the registry built from an event stream: per-node core
// occupancy, link utilization, queue-depth timelines, per-stage totals,
// and DTL traffic. Build one with Analyze.
type Metrics struct {
	// End is the largest timestamp seen (the horizon for means).
	End float64
	// Nodes maps node index to its usage (sorted access via NodeList).
	Nodes map[int]*NodeUsage
	// Links maps link label to its usage.
	Links map[string]*LinkUsage
	// Queues maps queue label to its depth timeline.
	Queues map[string]*Utilization
	// Stages maps "component/stage" to its totals.
	Stages map[string]*StageTotal
	// DTL maps "tier/op" to staging totals.
	DTL map[string]*DTLStat
	// Gauges maps "subject/name" to the sampled timeline.
	Gauges map[string]*Utilization
	// Faults counts resilience events by kind name ("fault:staging",
	// "retry", "restart", "member-drop").
	Faults map[string]int
	// Counters holds the latest sample of each monotonic named counter
	// (CounterSet events, e.g. the campaign service's cache statistics).
	Counters map[string]float64
	// Events counts the events analyzed.
	Events int
}

// stageOpen tracks an unmatched StageBegin (or Put/Get begin).
type stageOpen struct {
	t     float64
	bytes float64
}

// Analyze folds an event stream into the metrics registry. Events must be
// in emission order (the recorder's natural order); timestamps within the
// stream are expected to be non-decreasing, as produced by a virtual-clock
// recorder.
func Analyze(events []Event) *Metrics {
	m := &Metrics{
		Nodes:    make(map[int]*NodeUsage),
		Links:    make(map[string]*LinkUsage),
		Queues:   make(map[string]*Utilization),
		Stages:   make(map[string]*StageTotal),
		DTL:      make(map[string]*DTLStat),
		Gauges:   make(map[string]*Utilization),
		Faults:   make(map[string]int),
		Counters: make(map[string]float64),
		Events:   len(events),
	}
	node := func(i int) *NodeUsage {
		n, ok := m.Nodes[i]
		if !ok {
			n = &NodeUsage{Node: i}
			m.Nodes[i] = n
		}
		return n
	}
	link := func(label string, src, dst int) *LinkUsage {
		l, ok := m.Links[label]
		if !ok {
			l = &LinkUsage{Link: label, Src: src, Dst: dst}
			m.Links[label] = l
		}
		return l
	}
	openStages := make(map[string]stageOpen) // "component/stage"
	openOps := make(map[string]stageOpen)    // "tier/op"

	for _, ev := range events {
		if ev.T > m.End {
			m.End = ev.T
		}
		switch ev.Kind {
		case ResourceAcquire:
			if ev.Node != NoNode {
				node(ev.Node).Cores.Add(ev.T, ev.Value)
			}
		case ResourceRelease:
			if ev.Node != NoNode {
				node(ev.Node).Cores.Add(ev.T, -ev.Value)
			}
		case QueueDepth:
			q, ok := m.Queues[ev.Subject]
			if !ok {
				q = &Utilization{}
				m.Queues[ev.Subject] = q
			}
			q.Set(ev.T, ev.Value)
		case FlowStart:
			link(ev.Subject, ev.Node, ev.Node2).Flows.Add(ev.T, 1)
		case FlowEnd:
			l := link(ev.Subject, ev.Node, ev.Node2)
			l.Flows.Add(ev.T, -1)
			l.Bytes += ev.Value
			l.Transfers++
		case StageBegin:
			openStages[ev.Subject+"/"+ev.Detail] = stageOpen{t: ev.T}
		case StageEnd:
			key := ev.Subject + "/" + ev.Detail
			st, ok := m.Stages[key]
			if !ok {
				st = &StageTotal{Component: ev.Subject, Stage: ev.Detail, Node: ev.Node}
				m.Stages[key] = st
			}
			if open, ok := openStages[key]; ok {
				st.Seconds += ev.T - open.t
				delete(openStages, key)
			}
			st.Count++
			st.Bytes += ev.Value
		case PutBegin:
			openOps[ev.Detail+"/put"] = stageOpen{t: ev.T, bytes: ev.Value}
		case PutEnd:
			m.dtlEnd(ev.Detail, "put", ev, openOps)
		case GetBegin:
			openOps[ev.Detail+"/get"] = stageOpen{t: ev.T, bytes: ev.Value}
		case GetEnd:
			m.dtlEnd(ev.Detail, "get", ev, openOps)
		case GaugeSet:
			key := ev.Subject + "/" + ev.Detail
			g, ok := m.Gauges[key]
			if !ok {
				g = &Utilization{}
				m.Gauges[key] = g
			}
			g.Set(ev.T, ev.Value)
		case FaultInject:
			m.Faults["fault:"+ev.Detail]++
		case RetryAttempt:
			m.Faults["retry"]++
		case ComponentRestart:
			m.Faults["restart"]++
		case MemberDrop:
			m.Faults["member-drop"]++
		case CounterSet:
			m.Counters[ev.Subject] = ev.Value
		}
	}
	// Close every timeline at the horizon so means cover the full run.
	for _, n := range m.Nodes {
		n.Cores.advance(m.End)
	}
	for _, l := range m.Links {
		l.Flows.advance(m.End)
	}
	for _, q := range m.Queues {
		q.advance(m.End)
	}
	for _, g := range m.Gauges {
		g.advance(m.End)
	}
	return m
}

// dtlEnd folds a Put/Get end event into the DTL stats.
func (m *Metrics) dtlEnd(tier, op string, ev Event, open map[string]stageOpen) {
	key := tier + "/" + op
	d, ok := m.DTL[key]
	if !ok {
		d = &DTLStat{Tier: tier, Op: op}
		m.DTL[key] = d
	}
	d.Count++
	d.Bytes += ev.Value
	if o, ok := open[key]; ok {
		d.Seconds += ev.T - o.t
		delete(open, key)
	}
}

// NodeList returns the node usages sorted by node index.
func (m *Metrics) NodeList() []*NodeUsage {
	out := make([]*NodeUsage, 0, len(m.Nodes))
	for _, n := range m.Nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// LinkList returns the link usages sorted by label.
func (m *Metrics) LinkList() []*LinkUsage {
	out := make([]*LinkUsage, 0, len(m.Links))
	for _, l := range m.Links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Link < out[j].Link })
	return out
}

// StageList returns the stage totals sorted by component then stage.
func (m *Metrics) StageList() []*StageTotal {
	out := make([]*StageTotal, 0, len(m.Stages))
	for _, s := range m.Stages {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Component != out[j].Component {
			return out[i].Component < out[j].Component
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// DTLList returns the staging stats sorted by tier then op.
func (m *Metrics) DTLList() []*DTLStat {
	out := make([]*DTLStat, 0, len(m.DTL))
	for _, d := range m.DTL {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tier != out[j].Tier {
			return out[i].Tier < out[j].Tier
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// QueueList returns queue labels sorted.
func (m *Metrics) QueueList() []string {
	out := make([]string, 0, len(m.Queues))
	for q := range m.Queues {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}

// CounterList returns the counter names sorted.
func (m *Metrics) CounterList() []string {
	out := make([]string, 0, len(m.Counters))
	for k := range m.Counters {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FaultList returns the resilience-event keys sorted.
func (m *Metrics) FaultList() []string {
	out := make([]string, 0, len(m.Faults))
	for k := range m.Faults {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// LinkLabel builds the canonical label for a directed link.
func LinkLabel(src, dst int) string { return fmt.Sprintf("n%d->n%d", src, dst) }
