// Package obs is the live instrumentation layer of the reproduction: a
// zero-dependency (stdlib-only) event bus, metrics registry, and trace
// exporters threaded through the discrete-event engine (internal/sim), the
// data transport layer (internal/dtl), the network fabric
// (internal/network), and the simulated runtime (internal/runtime).
//
// The paper's argument rests on seeing inside in situ execution: TAU-level
// per-stage timings and counters make the efficiency model (Eq. 1-3) and
// the multi-stage indicators (Eq. 5-9) computable. The post-hoc
// trace.EnsembleTrace records the outcome; this package records the
// behaviour — process lifecycle, resource occupancy, queue depths, staging
// transfers, and link utilization — keyed to the virtual clock, so a run
// can be debugged (open it in ui.perfetto.dev) and its resource timelines
// analyzed while the model stays untouched.
//
// Instrumentation is nil-safe by design: every Recorder method begins with
// a nil-receiver check, so threading a nil *Recorder through the simulator
// costs one branch per emission site and leaves determinism and benchmark
// numbers unaffected. See BenchmarkObsOverhead at the repository root.
package obs

import "fmt"

// Kind classifies an instrumentation event.
type Kind uint8

const (
	// ProcStart marks a simulated process beginning execution.
	ProcStart Kind = iota
	// ProcEnd marks a simulated process finishing.
	ProcEnd
	// StageBegin marks the start of an in situ stage (S, I^S, W, R, A,
	// I^A) on a component.
	StageBegin
	// StageEnd marks the end of an in situ stage; Value carries the bytes
	// moved for I/O stages.
	StageEnd
	// ResourceAcquire marks units taken from a counted resource (cores on
	// a node, semaphore slots); Value is the units acquired.
	ResourceAcquire
	// ResourceRelease marks units returned; Value is the units released.
	ResourceRelease
	// QueueDepth samples the depth of a queue (semaphore waiters, store
	// backlog); Value is the new depth.
	QueueDepth
	// PutBegin marks the start of a DTL write (staging data out).
	PutBegin
	// PutEnd marks the end of a DTL write; Value is the bytes staged.
	PutEnd
	// GetBegin marks the start of a DTL read (staging data in).
	GetBegin
	// GetEnd marks the end of a DTL read; Value is the bytes staged.
	GetEnd
	// FlowStart marks a network transfer joining the fabric; Value is the
	// transfer size in bytes, Node/Node2 the source/destination.
	FlowStart
	// FlowEnd marks a network transfer leaving the fabric (completed or
	// interrupted); Value is the bytes actually delivered.
	FlowEnd
	// GaugeSet samples an arbitrary named quantity (memory-bandwidth
	// pressure, link occupancy); Value is the sample.
	GaugeSet
	// FaultInject marks an injected fault firing: Subject is the afflicted
	// component/tier/node label, Detail the fault kind ("staging",
	// "node-crash", "degradation", "straggler").
	FaultInject
	// RetryAttempt marks a staging retry being scheduled after a transient
	// fault; Detail is the stage, Value the attempt number (1 = first
	// retry).
	RetryAttempt
	// ComponentRestart marks a component restarting after a crash fault;
	// Value is the restart count so far.
	ComponentRestart
	// MemberDrop marks an ensemble member being dropped under graceful
	// degradation; Value is the member index.
	MemberDrop
	// CounterSet samples a monotonic named counter (campaign submissions,
	// cache hits); Value is the cumulative count.
	CounterSet
	numKinds
)

var kindNames = [numKinds]string{
	"proc-start", "proc-end", "stage-begin", "stage-end",
	"resource-acquire", "resource-release", "queue-depth",
	"put-begin", "put-end", "get-begin", "get-end",
	"flow-start", "flow-end", "gauge",
	"fault", "retry", "restart", "member-drop", "counter",
}

// String returns the event taxonomy name of the kind.
func (k Kind) String() string {
	if k >= numKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Valid reports whether k is a defined event kind.
func (k Kind) Valid() bool { return k < numKinds }

// NoNode marks events with no node association.
const NoNode = -1

// Event is one instrumentation record. Events are keyed to the virtual
// clock (T, in simulated seconds) and carry a small fixed schema so the
// recorder allocates nothing beyond the backing slice.
type Event struct {
	// T is the virtual time of the event in seconds.
	T float64
	// Kind classifies the event.
	Kind Kind
	// Subject names what the event is about: a process/component name, a
	// resource label, or a link label ("n0->n1").
	Subject string
	// Detail refines the subject: the stage name for stage events, the
	// tier name for DTL events, the gauge name for gauge events.
	Detail string
	// Node is the primary node index (NoNode when not applicable).
	Node int
	// Node2 is the secondary node for transfers (destination); NoNode
	// otherwise.
	Node2 int
	// Value carries the event magnitude: bytes, queue depth, units.
	Value float64
}

// Recorder is the typed event bus. A nil *Recorder is a valid no-op
// recorder: every method returns immediately, so instrumented code does
// not need its own guards. Recorder is not safe for concurrent use from
// multiple OS threads running simultaneously; the discrete-event engine's
// cooperative scheduling (exactly one process executes at a time, with
// channel handoffs establishing happens-before edges) satisfies this.
type Recorder struct {
	clock  func() float64
	events []Event
	sink   Sink
}

// Sink receives a live mirror of the recorder's operational emissions —
// monotonic counters, queue depths, and gauges — as they happen, in
// addition to the event log. It exists to bridge obs telemetry into the
// service-tier metrics registry (telemetry.ObsSink satisfies it), so one
// Prometheus scrape covers both the simulated and the serving world.
// Sink methods are called synchronously from the emission site and must
// be safe under whatever serialization the recorder's callers provide.
type Sink interface {
	// Count mirrors Recorder.Count: a cumulative total for a named counter.
	Count(name string, total float64)
	// QueueDepth mirrors Recorder.QueueDepth.
	QueueDepth(queue string, depth int)
	// Gauge mirrors Recorder.Gauge.
	Gauge(subject, name string, node int, value float64)
}

// SetSink installs (or, with nil, removes) the live mirror for counter,
// queue-depth, and gauge emissions.
func (r *Recorder) SetSink(s Sink) {
	if r == nil {
		return
	}
	r.sink = s
}

// NewRecorder returns a recorder reading timestamps from clock (typically
// Env.Now of the simulation environment). A nil clock stamps every event
// with zero, which suits recorders fed by post-hoc converters that set
// times explicitly.
func NewRecorder(clock func() float64) *Recorder {
	return &Recorder{clock: clock}
}

// Enabled reports whether the recorder actually records.
func (r *Recorder) Enabled() bool { return r != nil }

// SetClock rebinds the timestamp source. sim.Env.SetRecorder calls this so
// a recorder constructed before the environment exists (e.g. by a CLI flag
// handler) picks up the virtual clock when the run starts.
func (r *Recorder) SetClock(clock func() float64) {
	if r == nil {
		return
	}
	r.clock = clock
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Events returns the recorded events in emission order. The slice is the
// recorder's backing storage; callers must not mutate it while recording
// continues.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Reset discards all recorded events, keeping the clock.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.events = r.events[:0]
}

// now reads the clock (zero without one).
func (r *Recorder) now() float64 {
	if r.clock == nil {
		return 0
	}
	return r.clock()
}

// Emit appends a fully specified event, stamping it with the clock.
// Prefer the typed helpers; Emit exists for converters and tests.
func (r *Recorder) Emit(ev Event) {
	if r == nil {
		return
	}
	r.events = append(r.events, ev)
}

// EmitNow appends ev stamped at the current clock reading.
func (r *Recorder) EmitNow(ev Event) {
	if r == nil {
		return
	}
	ev.T = r.now()
	r.events = append(r.events, ev)
}

// ProcStart records a process beginning execution.
func (r *Recorder) ProcStart(name string, node int) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{T: r.now(), Kind: ProcStart, Subject: name, Node: node, Node2: NoNode})
}

// ProcEnd records a process finishing.
func (r *Recorder) ProcEnd(name string, node int) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{T: r.now(), Kind: ProcEnd, Subject: name, Node: node, Node2: NoNode})
}

// StageBegin records the start of stage on the named component.
func (r *Recorder) StageBegin(component, stage string, node int) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{T: r.now(), Kind: StageBegin, Subject: component, Detail: stage, Node: node, Node2: NoNode})
}

// StageEnd records the end of stage on the named component; bytes carries
// the data moved for I/O stages (zero otherwise).
func (r *Recorder) StageEnd(component, stage string, node int, bytes float64) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{T: r.now(), Kind: StageEnd, Subject: component, Detail: stage, Node: node, Node2: NoNode, Value: bytes})
}

// ResourceAcquire records units taken from a counted resource.
func (r *Recorder) ResourceAcquire(resource string, node int, units float64) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{T: r.now(), Kind: ResourceAcquire, Subject: resource, Node: node, Node2: NoNode, Value: units})
}

// ResourceRelease records units returned to a counted resource.
func (r *Recorder) ResourceRelease(resource string, node int, units float64) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{T: r.now(), Kind: ResourceRelease, Subject: resource, Node: node, Node2: NoNode, Value: units})
}

// QueueDepth samples the depth of the named queue.
func (r *Recorder) QueueDepth(queue string, depth int) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{T: r.now(), Kind: QueueDepth, Subject: queue, Node: NoNode, Node2: NoNode, Value: float64(depth)})
	if r.sink != nil {
		r.sink.QueueDepth(queue, depth)
	}
}

// PutBegin records the start of a DTL write by the calling process.
func (r *Recorder) PutBegin(tier string, node int, bytes int64) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{T: r.now(), Kind: PutBegin, Subject: "dtl", Detail: tier, Node: node, Node2: NoNode, Value: float64(bytes)})
}

// PutEnd records the completion of a DTL write.
func (r *Recorder) PutEnd(tier string, node int, bytes int64) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{T: r.now(), Kind: PutEnd, Subject: "dtl", Detail: tier, Node: node, Node2: NoNode, Value: float64(bytes)})
}

// GetBegin records the start of a DTL read from producerNode into
// consumerNode.
func (r *Recorder) GetBegin(tier string, producerNode, consumerNode int, bytes int64) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{T: r.now(), Kind: GetBegin, Subject: "dtl", Detail: tier, Node: producerNode, Node2: consumerNode, Value: float64(bytes)})
}

// GetEnd records the completion of a DTL read.
func (r *Recorder) GetEnd(tier string, producerNode, consumerNode int, bytes int64) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{T: r.now(), Kind: GetEnd, Subject: "dtl", Detail: tier, Node: producerNode, Node2: consumerNode, Value: float64(bytes)})
}

// FlowStart records a transfer joining the fabric.
func (r *Recorder) FlowStart(link string, src, dst int, bytes float64) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{T: r.now(), Kind: FlowStart, Subject: link, Node: src, Node2: dst, Value: bytes})
}

// FlowEnd records a transfer leaving the fabric; delivered is the bytes
// actually moved (less than the request if interrupted).
func (r *Recorder) FlowEnd(link string, src, dst int, delivered float64) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{T: r.now(), Kind: FlowEnd, Subject: link, Node: src, Node2: dst, Value: delivered})
}

// Gauge samples the named quantity on the subject.
func (r *Recorder) Gauge(subject, name string, node int, value float64) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{T: r.now(), Kind: GaugeSet, Subject: subject, Detail: name, Node: node, Node2: NoNode, Value: value})
	if r.sink != nil {
		r.sink.Gauge(subject, name, node, value)
	}
}

// Fault records an injected fault firing against subject; kind names the
// fault taxonomy entry ("staging", "node-crash", "degradation",
// "straggler") and value carries a kind-specific magnitude (bytes lost,
// slowdown factor, bandwidth factor).
func (r *Recorder) Fault(subject, kind string, node int, value float64) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{T: r.now(), Kind: FaultInject, Subject: subject, Detail: kind, Node: node, Node2: NoNode, Value: value})
}

// Retry records a staging retry scheduled for component after a transient
// fault in stage; attempt is 1-based.
func (r *Recorder) Retry(component, stage string, node, attempt int) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{T: r.now(), Kind: RetryAttempt, Subject: component, Detail: stage, Node: node, Node2: NoNode, Value: float64(attempt)})
}

// Restart records a component restarting after a crash fault; n counts the
// restarts so far for the component.
func (r *Recorder) Restart(component string, node, n int) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{T: r.now(), Kind: ComponentRestart, Subject: component, Node: node, Node2: NoNode, Value: float64(n)})
}

// Count samples the cumulative value of the named monotonic counter
// (e.g. "campaign.cache.hits"). Analyze keeps the latest sample per
// counter, so emitting on every change yields exact final totals plus a
// QueueDepth-style timeline of intermediate values.
func (r *Recorder) Count(name string, total float64) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{T: r.now(), Kind: CounterSet, Subject: name, Node: NoNode, Node2: NoNode, Value: total})
	if r.sink != nil {
		r.sink.Count(name, total)
	}
}

// MemberDropped records an ensemble member leaving the run under graceful
// degradation; cause summarizes the triggering fault.
func (r *Recorder) MemberDropped(member int, cause string) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{T: r.now(), Kind: MemberDrop, Subject: fmt.Sprintf("m%d", member), Detail: cause, Node: NoNode, Node2: NoNode, Value: float64(member)})
}
