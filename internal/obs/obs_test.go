package obs

import (
	"strings"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder should report disabled")
	}
	// Every method must be a no-op on the nil receiver.
	r.ProcStart("p", 0)
	r.ProcEnd("p", 0)
	r.StageBegin("p", "S", 0)
	r.StageEnd("p", "S", 0, 10)
	r.ResourceAcquire("cores", 0, 8)
	r.ResourceRelease("cores", 0, 8)
	r.QueueDepth("q", 3)
	r.PutBegin("dimes", 0, 100)
	r.PutEnd("dimes", 0, 100)
	r.GetBegin("dimes", 0, 1, 100)
	r.GetEnd("dimes", 0, 1, 100)
	r.FlowStart("n0->n1", 0, 1, 100)
	r.FlowEnd("n0->n1", 0, 1, 100)
	r.Gauge("node0", "membw", 0, 0.5)
	r.Emit(Event{})
	r.EmitNow(Event{})
	r.Reset()
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder must hold no events")
	}
}

func TestRecorderStampsClock(t *testing.T) {
	now := 0.0
	r := NewRecorder(func() float64 { return now })
	r.ProcStart("m0.sim", 0)
	now = 1.5
	r.StageBegin("m0.sim", "S", 0)
	now = 2.5
	r.StageEnd("m0.sim", "S", 0, 0)
	r.ProcEnd("m0.sim", 0)

	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	wantT := []float64{0, 1.5, 2.5, 2.5}
	wantK := []Kind{ProcStart, StageBegin, StageEnd, ProcEnd}
	for i, ev := range evs {
		if ev.T != wantT[i] || ev.Kind != wantK[i] {
			t.Errorf("event %d = {T:%v Kind:%v}, want {T:%v Kind:%v}", i, ev.T, ev.Kind, wantT[i], wantK[i])
		}
	}
	if evs[1].Subject != "m0.sim" || evs[1].Detail != "S" {
		t.Errorf("stage event mislabeled: %+v", evs[1])
	}
	r.Reset()
	if r.Len() != 0 {
		t.Error("Reset should drop events")
	}
}

func TestRecorderNoClock(t *testing.T) {
	r := NewRecorder(nil)
	r.QueueDepth("q", 2)
	if r.Events()[0].T != 0 {
		t.Error("clockless recorder should stamp zero")
	}
	if !r.Enabled() {
		t.Error("non-nil recorder should report enabled")
	}
}

func TestKindString(t *testing.T) {
	if ProcStart.String() != "proc-start" || GetEnd.String() != "get-end" {
		t.Errorf("unexpected kind names: %v %v", ProcStart, GetEnd)
	}
	if !strings.Contains(Kind(200).String(), "200") {
		t.Error("unknown kind should include its number")
	}
	if Kind(200).Valid() {
		t.Error("Kind(200) should be invalid")
	}
	for k := Kind(0); k.Valid(); k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
}

// fakeSink records forwarded telemetry calls.
type fakeSink struct {
	counts map[string]float64
	queues map[string]int
	gauges map[string]float64
}

func (s *fakeSink) Count(name string, total float64)   { s.counts[name] = total }
func (s *fakeSink) QueueDepth(queue string, depth int) { s.queues[queue] = depth }
func (s *fakeSink) Gauge(subject, name string, _ int, v float64) {
	s.gauges[subject+"/"+name] = v
}

func TestRecorderForwardsToSink(t *testing.T) {
	s := &fakeSink{
		counts: map[string]float64{},
		queues: map[string]int{},
		gauges: map[string]float64{},
	}
	r := NewRecorder(nil)
	r.SetSink(s)
	r.Count("campaign.cache.hits", 3)
	r.Count("campaign.cache.hits", 5) // latest total wins
	r.QueueDepth("campaign.queue", 4)
	r.Gauge("node0", "membw", 0, 0.75)

	if s.counts["campaign.cache.hits"] != 5 {
		t.Errorf("count forwarded %v, want 5", s.counts["campaign.cache.hits"])
	}
	if s.queues["campaign.queue"] != 4 {
		t.Errorf("queue depth forwarded %v, want 4", s.queues["campaign.queue"])
	}
	if s.gauges["node0/membw"] != 0.75 {
		t.Errorf("gauge forwarded %v, want 0.75", s.gauges["node0/membw"])
	}
	// The event log records everything the sink saw.
	if r.Len() != 4 {
		t.Errorf("recorder kept %d events, want 4", r.Len())
	}

	// A nil sink on a live recorder must be a no-op, not a panic.
	r.SetSink(nil)
	r.Count("campaign.cache.hits", 6)
	if s.counts["campaign.cache.hits"] != 5 {
		t.Error("cleared sink still received forwards")
	}
}
