package network

import (
	"math"
	"testing"

	"ensemblekit/internal/sim"
)

func dragonflyConfig() Config {
	return Config{
		Nodes:        8,
		NICBandwidth: 8e9,
		Topology: &Dragonfly{
			GroupSize:       4,
			GlobalBandwidth: 4e9,
			GlobalLatency:   10e-6,
		},
	}
}

func TestDragonflyValidate(t *testing.T) {
	if err := dragonflyConfig().Validate(); err != nil {
		t.Fatalf("valid dragonfly config rejected: %v", err)
	}
	bad := []Dragonfly{
		{GroupSize: 0, GlobalBandwidth: 1},
		{GroupSize: 4, GlobalBandwidth: 0},
		{GroupSize: 4, GlobalBandwidth: 1, GlobalLatency: -1},
	}
	for i, d := range bad {
		cfg := dragonflyConfig()
		d := d
		cfg.Topology = &d
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid topology accepted", i)
		}
	}
	if s := dragonflyConfig().Topology.String(); s == "" {
		t.Error("empty topology description")
	}
}

func TestDragonflyIntraGroupUnaffected(t *testing.T) {
	// Nodes 0 and 1 share a group: no global link, no global latency.
	env := sim.NewEnv()
	fab, err := NewFabric(env, dragonflyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var done float64
	env.Go("x", func(p *sim.Proc) error {
		if err := fab.Transfer(p, 0, 1, 8e9); err != nil {
			return err
		}
		done = p.Now()
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(done-1.0) > 1e-6 {
		t.Errorf("intra-group transfer at %v, want 1.0 (NIC-bound)", done)
	}
}

func TestDragonflyGlobalLinkCapsCrossGroupFlow(t *testing.T) {
	// Nodes 0 (group 0) -> 4 (group 1): the 4 GB/s global link binds
	// before the 8 GB/s NICs.
	env := sim.NewEnv()
	fab, err := NewFabric(env, dragonflyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var done float64
	env.Go("x", func(p *sim.Proc) error {
		if err := fab.Transfer(p, 0, 4, 8e9); err != nil {
			return err
		}
		done = p.Now()
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := 2.0 + 10e-6 // 8 GB at 4 GB/s + global latency
	if math.Abs(done-want) > 1e-6 {
		t.Errorf("cross-group transfer at %v, want %v (global-link bound)", done, want)
	}
}

func TestDragonflyGlobalLinkSharedByGroupTraffic(t *testing.T) {
	// Two flows from different nodes of group 0 to different nodes of
	// group 1: disjoint NICs, but both cross group 0's uplink and group
	// 1's downlink -> each gets 2 GB/s.
	env := sim.NewEnv()
	fab, err := NewFabric(env, dragonflyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var t1, t2 float64
	env.Go("f1", func(p *sim.Proc) error {
		if err := fab.Transfer(p, 0, 4, 4e9); err != nil {
			return err
		}
		t1 = p.Now()
		return nil
	})
	env.Go("f2", func(p *sim.Proc) error {
		if err := fab.Transfer(p, 1, 5, 4e9); err != nil {
			return err
		}
		t2 = p.Now()
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := 2.0 + 10e-6 // 4 GB at 2 GB/s each
	if math.Abs(t1-want) > 1e-6 || math.Abs(t2-want) > 1e-6 {
		t.Errorf("shared-global completions = %v, %v; want %v each", t1, t2, want)
	}
}

func TestDragonflyCrossVsIntraGroupContention(t *testing.T) {
	// A cross-group flow does not consume the local links of unrelated
	// intra-group traffic in another group.
	env := sim.NewEnv()
	fab, err := NewFabric(env, dragonflyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var tCross, tLocal float64
	env.Go("cross", func(p *sim.Proc) error {
		if err := fab.Transfer(p, 0, 4, 4e9); err != nil {
			return err
		}
		tCross = p.Now()
		return nil
	})
	env.Go("local", func(p *sim.Proc) error {
		if err := fab.Transfer(p, 5, 6, 8e9); err != nil {
			return err
		}
		tLocal = p.Now()
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(tCross-(1.0+10e-6)) > 1e-6 {
		t.Errorf("cross-group flow at %v, want ~1.0 (4 GB at 4 GB/s)", tCross)
	}
	if math.Abs(tLocal-1.0) > 1e-6 {
		t.Errorf("intra-group flow at %v, want 1.0 (unaffected)", tLocal)
	}
}
