package network

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ensemblekit/internal/sim"
)

func testConfig() Config {
	return Config{Nodes: 4, NICBandwidth: 8e9, Latency: 0, PerFlowCap: 0}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []Config{
		{Nodes: 0, NICBandwidth: 1},
		{Nodes: 1, NICBandwidth: 0},
		{Nodes: 1, NICBandwidth: 1, Latency: -1},
		{Nodes: 1, NICBandwidth: 1, PerFlowCap: -1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}

func TestSingleTransferDuration(t *testing.T) {
	env := sim.NewEnv()
	fab, err := NewFabric(env, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var done float64
	env.Go("xfer", func(p *sim.Proc) error {
		if err := fab.Transfer(p, 0, 1, 8e9); err != nil { // 8 GB at 8 GB/s
			return err
		}
		done = p.Now()
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(done-1.0) > 1e-6 {
		t.Errorf("transfer completed at %v, want 1.0", done)
	}
	if fab.ActiveFlows() != 0 {
		t.Errorf("active flows = %d, want 0", fab.ActiveFlows())
	}
	if math.Abs(fab.TotalBytes()-8e9) > 1 {
		t.Errorf("total bytes = %v, want 8e9", fab.TotalBytes())
	}
}

func TestLatencyAdded(t *testing.T) {
	env := sim.NewEnv()
	cfg := testConfig()
	cfg.Latency = 0.5
	fab, err := NewFabric(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var done float64
	env.Go("xfer", func(p *sim.Proc) error {
		if err := fab.Transfer(p, 0, 1, 8e9); err != nil {
			return err
		}
		done = p.Now()
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(done-1.5) > 1e-6 {
		t.Errorf("transfer with latency completed at %v, want 1.5", done)
	}
}

func TestPerFlowCap(t *testing.T) {
	env := sim.NewEnv()
	cfg := testConfig()
	cfg.PerFlowCap = 1e9
	fab, err := NewFabric(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var done float64
	env.Go("xfer", func(p *sim.Proc) error {
		if err := fab.Transfer(p, 0, 1, 2e9); err != nil {
			return err
		}
		done = p.Now()
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(done-2.0) > 1e-6 {
		t.Errorf("capped transfer completed at %v, want 2.0", done)
	}
}

func TestEgressSharing(t *testing.T) {
	// Two flows out of node 0 to distinct destinations share node 0's NIC:
	// each gets half the bandwidth.
	env := sim.NewEnv()
	fab, err := NewFabric(env, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var t1, t2 float64
	env.Go("f1", func(p *sim.Proc) error {
		if err := fab.Transfer(p, 0, 1, 8e9); err != nil {
			return err
		}
		t1 = p.Now()
		return nil
	})
	env.Go("f2", func(p *sim.Proc) error {
		if err := fab.Transfer(p, 0, 2, 8e9); err != nil {
			return err
		}
		t2 = p.Now()
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Both 8 GB flows at 4 GB/s each: 2 s.
	if math.Abs(t1-2.0) > 1e-6 || math.Abs(t2-2.0) > 1e-6 {
		t.Errorf("completions = %v, %v; want 2.0 each", t1, t2)
	}
}

func TestIngressSharing(t *testing.T) {
	// Two flows from distinct sources into node 2 share node 2's NIC —
	// the C1.1 pattern (two analyses on one node pulling from two
	// producers).
	env := sim.NewEnv()
	fab, err := NewFabric(env, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var t1, t2 float64
	env.Go("f1", func(p *sim.Proc) error {
		if err := fab.Transfer(p, 0, 2, 8e9); err != nil {
			return err
		}
		t1 = p.Now()
		return nil
	})
	env.Go("f2", func(p *sim.Proc) error {
		if err := fab.Transfer(p, 1, 2, 8e9); err != nil {
			return err
		}
		t2 = p.Now()
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(t1-2.0) > 1e-6 || math.Abs(t2-2.0) > 1e-6 {
		t.Errorf("completions = %v, %v; want 2.0 each", t1, t2)
	}
}

func TestLateJoinerSlowsExistingFlow(t *testing.T) {
	// Flow A starts alone; at t=0.5 flow B joins the same egress link.
	// A has 4 GB left at that point, now at 4 GB/s -> finishes at 1.5.
	// B transfers 8 GB: 4 GB/s until A leaves (4 GB done at t=1.5), then
	// 8 GB/s for the remaining 4 GB -> finishes at 2.0.
	env := sim.NewEnv()
	fab, err := NewFabric(env, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var ta, tb float64
	env.Go("a", func(p *sim.Proc) error {
		if err := fab.Transfer(p, 0, 1, 8e9); err != nil {
			return err
		}
		ta = p.Now()
		return nil
	})
	env.Go("b", func(p *sim.Proc) error {
		if err := p.Wait(0.5); err != nil {
			return err
		}
		if err := fab.Transfer(p, 0, 2, 8e9); err != nil {
			return err
		}
		tb = p.Now()
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(ta-1.5) > 1e-6 {
		t.Errorf("flow A completed at %v, want 1.5", ta)
	}
	if math.Abs(tb-2.0) > 1e-6 {
		t.Errorf("flow B completed at %v, want 2.0", tb)
	}
}

func TestDisjointFlowsDoNotInterfere(t *testing.T) {
	env := sim.NewEnv()
	fab, err := NewFabric(env, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var t1, t2 float64
	env.Go("f1", func(p *sim.Proc) error {
		if err := fab.Transfer(p, 0, 1, 8e9); err != nil {
			return err
		}
		t1 = p.Now()
		return nil
	})
	env.Go("f2", func(p *sim.Proc) error {
		if err := fab.Transfer(p, 2, 3, 8e9); err != nil {
			return err
		}
		t2 = p.Now()
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(t1-1.0) > 1e-6 || math.Abs(t2-1.0) > 1e-6 {
		t.Errorf("disjoint flows completed at %v, %v; want 1.0 each", t1, t2)
	}
}

func TestSelfTransferRejected(t *testing.T) {
	env := sim.NewEnv()
	fab, err := NewFabric(env, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var xferErr error
	env.Go("x", func(p *sim.Proc) error {
		xferErr = fab.Transfer(p, 1, 1, 100)
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if xferErr == nil {
		t.Fatal("self transfer should be rejected")
	}
}

func TestBadEndpointsRejected(t *testing.T) {
	env := sim.NewEnv()
	fab, err := NewFabric(env, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var e1, e2, e3 error
	env.Go("x", func(p *sim.Proc) error {
		e1 = fab.Transfer(p, -1, 1, 100)
		e2 = fab.Transfer(p, 0, 99, 100)
		e3 = fab.Transfer(p, 0, 1, -5)
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, e := range []error{e1, e2, e3} {
		if e == nil {
			t.Errorf("bad transfer %d accepted", i)
		}
	}
}

func TestZeroByteTransferIsLatencyOnly(t *testing.T) {
	env := sim.NewEnv()
	cfg := testConfig()
	cfg.Latency = 0.25
	fab, err := NewFabric(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var done float64
	env.Go("x", func(p *sim.Proc) error {
		if err := fab.Transfer(p, 0, 1, 0); err != nil {
			return err
		}
		done = p.Now()
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(done-0.25) > 1e-9 {
		t.Errorf("zero-byte transfer took %v, want latency 0.25", done)
	}
}

func TestInterruptedTransferReleasesBandwidth(t *testing.T) {
	env := sim.NewEnv()
	fab, err := NewFabric(env, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var aErr error
	var tb float64
	a := env.Go("a", func(p *sim.Proc) error {
		aErr = fab.Transfer(p, 0, 1, 80e9) // would take 10 s alone
		return nil
	})
	env.Go("b", func(p *sim.Proc) error {
		if err := p.Wait(0.5); err != nil {
			return err
		}
		// Shares the link with A until A is killed at t=1.
		if err := fab.Transfer(p, 0, 2, 8e9); err != nil {
			return err
		}
		tb = p.Now()
		return nil
	})
	env.Go("killer", func(p *sim.Proc) error {
		if err := p.Wait(1); err != nil {
			return err
		}
		a.Interrupt("cancel transfer")
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(aErr, sim.ErrInterrupted) {
		t.Fatalf("aErr = %v, want ErrInterrupted", aErr)
	}
	// B: 0.5 s at 4 GB/s (2 GB done), then full 8 GB/s after A dies at t=1.
	// Remaining 6 GB / 8 GB/s = 0.75 -> completes at 1.75.
	if math.Abs(tb-1.75) > 1e-6 {
		t.Errorf("flow B completed at %v, want 1.75 (bandwidth must be released)", tb)
	}
	if fab.ActiveFlows() != 0 {
		t.Errorf("active flows = %d, want 0 after interrupt cleanup", fab.ActiveFlows())
	}
}

func TestInterruptedTransferTotalBytes(t *testing.T) {
	// Byte-conservation regression for the interrupt path: an interrupted
	// flow must contribute exactly the bytes it delivered before the
	// interrupt — not its full size, and not zero. Same timeline as
	// TestInterruptedTransferReleasesBandwidth: A runs alone at 8 GB/s for
	// 0.5 s (4 GB), shares at 4 GB/s for 0.5 s (+2 GB), and is killed at
	// t=1 with 6 GB delivered; B delivers its full 8 GB.
	env := sim.NewEnv()
	fab, err := NewFabric(env, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := env.Go("a", func(p *sim.Proc) error {
		err := fab.Transfer(p, 0, 1, 80e9)
		if !errors.Is(err, sim.ErrInterrupted) {
			t.Errorf("transfer A: %v, want ErrInterrupted", err)
		}
		return nil
	})
	env.Go("b", func(p *sim.Proc) error {
		if err := p.Wait(0.5); err != nil {
			return err
		}
		return fab.Transfer(p, 0, 2, 8e9)
	})
	env.Go("killer", func(p *sim.Proc) error {
		if err := p.Wait(1); err != nil {
			return err
		}
		a.Interrupt("cancel transfer")
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	const want = 6e9 + 8e9
	if got := fab.TotalBytes(); math.Abs(got-want) > 1 {
		t.Errorf("TotalBytes = %v, want %v (interrupted flow must count partial delivery only)", got, want)
	}
}

func TestManyFlowsFairShareConservation(t *testing.T) {
	// N flows through one egress link: each gets BW/N; all complete
	// simultaneously; aggregate equals link capacity.
	const n = 8
	env := sim.NewEnv()
	cfg := Config{Nodes: n + 1, NICBandwidth: 8e9}
	fab, err := NewFabric(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make([]float64, n)
	for i := 0; i < n; i++ {
		i := i
		env.Go("f", func(p *sim.Proc) error {
			if err := fab.Transfer(p, 0, i+1, 1e9); err != nil {
				return err
			}
			done[i] = p.Now()
			return nil
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := float64(n) * 1e9 / 8e9 // n GB aggregate at 8 GB/s
	for i, d := range done {
		if math.Abs(d-want) > 1e-6 {
			t.Errorf("flow %d completed at %v, want %v", i, d, want)
		}
	}
}

func TestDeterministicUnderContention(t *testing.T) {
	run := func() []float64 {
		env := sim.NewEnv()
		fab, err := NewFabric(env, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 3)
		starts := []float64{0, 0.3, 0.7}
		for i := 0; i < 3; i++ {
			i := i
			env.Go("f", func(p *sim.Proc) error {
				if err := p.Wait(starts[i]); err != nil {
					return err
				}
				if err := fab.Transfer(p, 0, 1+i%3, 5e9); err != nil {
					return err
				}
				out[i] = p.Now()
				return nil
			})
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		got := run()
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("nondeterministic completion times: %v vs %v", got, first)
			}
		}
	}
}

// Property: for random flow sets the max-min allocation never exceeds any
// link capacity or the per-flow cap, and every flow gets a positive rate.
func TestAssignRatesProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		nodes := 2 + rng.Intn(6)
		cfg := Config{
			Nodes:        nodes,
			NICBandwidth: 1e9 * float64(1+rng.Intn(10)),
		}
		if rng.Intn(2) == 0 {
			cfg.PerFlowCap = 1e8 * float64(1+rng.Intn(20))
		}
		if rng.Intn(2) == 0 && nodes >= 2 {
			cfg.Topology = &Dragonfly{
				GroupSize:       1 + rng.Intn(nodes),
				GlobalBandwidth: 1e8 * float64(1+rng.Intn(30)),
			}
		}
		env := sim.NewEnv()
		fab, err := NewFabric(env, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nFlows := 1 + rng.Intn(12)
		for f := 0; f < nFlows; f++ {
			src := rng.Intn(nodes)
			dst := (src + 1 + rng.Intn(nodes-1)) % nodes
			fl := fab.newFlow(nil, src, dst, 1e9)
			fl.idx = int32(len(fab.flows))
			fab.flows = append(fab.flows, fl)
		}
		fab.assignRates()
		// Per-flow constraints.
		egUsed := make([]float64, nodes)
		inUsed := make([]float64, nodes)
		for _, fl := range fab.flows {
			if fl.rate <= 0 {
				t.Fatalf("trial %d: flow got non-positive rate %v", trial, fl.rate)
			}
			if cfg.PerFlowCap > 0 && fl.rate > cfg.PerFlowCap*(1+1e-9) {
				t.Fatalf("trial %d: rate %v exceeds per-flow cap %v", trial, fl.rate, cfg.PerFlowCap)
			}
			egUsed[fl.src] += fl.rate
			inUsed[fl.dst] += fl.rate
		}
		for n := 0; n < nodes; n++ {
			if egUsed[n] > cfg.NICBandwidth*(1+1e-6) {
				t.Fatalf("trial %d: egress %d oversubscribed: %v > %v", trial, n, egUsed[n], cfg.NICBandwidth)
			}
			if inUsed[n] > cfg.NICBandwidth*(1+1e-6) {
				t.Fatalf("trial %d: ingress %d oversubscribed: %v > %v", trial, n, inUsed[n], cfg.NICBandwidth)
			}
		}
		// Global-link constraints.
		if topo := cfg.Topology; topo != nil {
			groups := topo.groups(nodes)
			up := make([]float64, groups)
			down := make([]float64, groups)
			for _, fl := range fab.flows {
				gs, gd := topo.groupOf(fl.src), topo.groupOf(fl.dst)
				if gs != gd {
					up[gs] += fl.rate
					down[gd] += fl.rate
				}
			}
			for g := 0; g < groups; g++ {
				if up[g] > topo.GlobalBandwidth*(1+1e-6) || down[g] > topo.GlobalBandwidth*(1+1e-6) {
					t.Fatalf("trial %d: global link %d oversubscribed: up %v down %v cap %v",
						trial, g, up[g], down[g], topo.GlobalBandwidth)
				}
			}
		}
		fab.flows = nil
	}
}
