// Package network models the cluster interconnect (Cray Aries on Cori) for
// remote staging transfers. Each node has finite NIC injection (egress) and
// ejection (ingress) bandwidth, each staging flow is additionally capped by
// the effective per-flow throughput of the staging protocol, and concurrent
// flows share the fabric with max-min fairness. The model is progress-based:
// whenever a flow joins or completes, the remaining bytes of every active
// flow are settled at the old rates and rates are recomputed, so emergent
// sharing (e.g., two analyses pulling from the same producer node, the C1.4
// pattern) comes out of the dynamics rather than a static formula.
//
// The reallocation path is allocation-free in steady state: flow structs
// are pooled, each flow carries its precomputed link-constraint list, and
// assignRates water-fills over scratch buffers owned by the Fabric. None
// of this changes the arithmetic — rates are computed over the same links
// in the same stable flow order, so simulated timestamps are identical to
// the straightforward implementation (pinned by the golden determinism
// tests at the repository root).
package network

import (
	"errors"
	"fmt"
	"math"

	"ensemblekit/internal/obs"
	"ensemblekit/internal/sim"
)

// Config sets the fabric's capacities.
type Config struct {
	// Nodes is the number of endpoints.
	Nodes int
	// NICBandwidth is the per-node injection and ejection bandwidth in
	// bytes/s.
	NICBandwidth float64
	// Latency is the protocol latency added to every transfer in seconds.
	Latency float64
	// PerFlowCap is the maximum throughput of a single flow in bytes/s
	// (the effective staging protocol throughput); 0 means uncapped.
	PerFlowCap float64
	// NodeBandwidth optionally overrides the NIC bandwidth of individual
	// endpoints (by index). Zero entries keep NICBandwidth. This lets a
	// storage tier (burst buffer, parallel file system) be modeled as an
	// extra endpoint with its own aggregate bandwidth.
	NodeBandwidth []float64
	// Topology optionally adds dragonfly group structure: inter-group
	// flows additionally share per-group global links and pay extra
	// latency. Nil keeps the flat all-to-all fabric.
	Topology *Dragonfly
}

// bandwidthOf returns the capacity of endpoint i.
func (c Config) bandwidthOf(i int) float64 {
	if i < len(c.NodeBandwidth) && c.NodeBandwidth[i] > 0 {
		return c.NodeBandwidth[i]
	}
	return c.NICBandwidth
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return errors.New("network: Nodes must be positive")
	case c.NICBandwidth <= 0:
		return errors.New("network: NICBandwidth must be positive")
	case c.Latency < 0:
		return errors.New("network: Latency must be non-negative")
	case c.PerFlowCap < 0:
		return errors.New("network: PerFlowCap must be non-negative")
	}
	if c.Topology != nil {
		if err := c.Topology.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Flow is an in-flight transfer. Flow structs are pooled on the Fabric;
// ownership of a record follows the party that removes it from the active
// set: the completion path (onEvent) releases flows it unparks, and the
// Transfer error path releases flows whose wait was interrupted.
type flow struct {
	src, dst  int
	remaining float64 // bytes
	rate      float64 // bytes/s under the current allocation
	proc      *sim.Proc
	done      bool
	// size is the requested transfer size; size-remaining is the bytes
	// delivered, reported on the flow-end instrumentation event.
	size float64
	// link is the precomputed obs label ("n0->n1"), empty when
	// instrumentation is off.
	link string
	// links is the flow's constraint list — egress, ingress, and (for
	// inter-group flows under a dragonfly topology) group uplink and
	// downlink indices into the fabric's capacity arrays — precomputed at
	// admission so reallocation never rebuilds it.
	links  [4]int32
	nlinks uint8
	// idx is the flow's slot in Fabric.flows, giving removal without a
	// scan (-1 when not in the active set).
	idx int32
}

// CancelWait implements sim.Waiter for the blocked transfer: marking the
// flow done makes the completion path's pending Unpark a no-op.
func (fl *flow) CancelWait(*sim.Proc) { fl.done = true }

// degradeWindow is a transient capacity-degradation interval: while
// active, every link capacity and the per-flow cap are multiplied by
// factor.
type degradeWindow struct {
	start, end, factor float64
}

// Fabric is the interconnect model bound to a simulation environment.
type Fabric struct {
	env        *sim.Env
	cfg        Config
	flows      []*flow
	lastSettle float64
	// next is the pending earliest-completion callback.
	next sim.Timer
	// onEventFn is the bound completion callback, created once so
	// reallocate does not allocate a method value per reschedule.
	onEventFn func()
	// TotalBytes counts all bytes ever delivered (for reporting).
	totalBytes float64
	// degrade holds transient capacity-degradation windows (fault
	// injection); boundary crossings re-settle and re-balance all flows,
	// and prune windows that have ended so capacityFactor only ever scans
	// live ones.
	degrade []degradeWindow

	// Link layout (fixed per configuration): [0,N) egress, [N,2N)
	// ingress, then per-group global uplinks and downlinks when a
	// topology is configured.
	nLinks int
	groups int
	// rem/count/unfixed are assignRates scratch, reused across
	// reallocations so the water-filling loop performs zero allocations.
	rem     []float64
	count   []int32
	unfixed []*flow
	// free is the flow pool.
	free []*flow
}

// NewFabric builds a fabric over the environment.
func NewFabric(env *sim.Env, cfg Config) (*Fabric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Fabric{env: env, cfg: cfg}
	f.nLinks = 2 * cfg.Nodes
	if cfg.Topology != nil {
		f.groups = cfg.Topology.groups(cfg.Nodes)
		f.nLinks += 2 * f.groups
	}
	f.rem = make([]float64, f.nLinks)
	f.count = make([]int32, f.nLinks)
	f.onEventFn = f.onEvent
	return f, nil
}

// Degrade installs a transient degradation window: between virtual times
// start and end every link capacity and the per-flow protocol cap are
// scaled by factor (0 < factor <= 1). Overlapping windows compound.
// Boundary events settle in-flight transfers at the old rates and
// re-balance at the new ones, so a flow spanning a window boundary pays
// exactly the degraded rate for exactly the degraded interval. Install
// windows before Env.Run for deterministic replay.
func (f *Fabric) Degrade(start, end, factor float64) error {
	if factor <= 0 || factor > 1 {
		return fmt.Errorf("network: degradation factor %v outside (0,1]", factor)
	}
	if end <= start {
		return fmt.Errorf("network: degradation window [%v,%v) is empty", start, end)
	}
	f.degrade = append(f.degrade, degradeWindow{start: start, end: end, factor: factor})
	rebalance := func() {
		f.pruneDegrade()
		f.settle()
		f.reallocate()
	}
	f.env.At(start, func() {
		if rec := f.env.Recorder(); rec.Enabled() {
			rec.Fault("fabric", "degradation", obs.NoNode, factor)
		}
		rebalance()
	})
	f.env.At(end, rebalance)
	return nil
}

// pruneDegrade drops windows that have ended. An ended window never
// contributes to capacityFactor again (t >= end fails its guard), so
// removal cannot change any rate — it only stops dead windows from being
// scanned on every reallocation for the rest of the run.
func (f *Fabric) pruneDegrade() {
	now := f.env.Now()
	w := 0
	for _, win := range f.degrade {
		if win.end > now {
			f.degrade[w] = win
			w++
		}
	}
	f.degrade = f.degrade[:w]
}

// capacityFactor is the compound degradation factor at virtual time t.
func (f *Fabric) capacityFactor(t float64) float64 {
	factor := 1.0
	for _, w := range f.degrade {
		if t >= w.start && t < w.end {
			factor *= w.factor
		}
	}
	return factor
}

// ActiveFlows returns the number of in-flight transfers.
func (f *Fabric) ActiveFlows() int { return len(f.flows) }

// TotalBytes returns the cumulative bytes delivered.
func (f *Fabric) TotalBytes() float64 { return f.totalBytes }

// newFlow takes a flow from the pool and initializes it, precomputing the
// constraint list.
func (f *Fabric) newFlow(p *sim.Proc, src, dst int, bytes float64) *flow {
	var fl *flow
	if n := len(f.free); n > 0 {
		fl = f.free[n-1]
		f.free[n-1] = nil
		f.free = f.free[:n-1]
	} else {
		fl = &flow{}
	}
	fl.src, fl.dst = src, dst
	fl.remaining, fl.size = bytes, bytes
	fl.rate = 0
	fl.proc = p
	fl.done = false
	fl.link = ""
	fl.idx = -1
	n := f.cfg.Nodes
	fl.links[0] = int32(src)
	fl.links[1] = int32(n + dst)
	fl.nlinks = 2
	if t := f.cfg.Topology; t != nil {
		if gs, gd := t.groupOf(src), t.groupOf(dst); gs != gd {
			fl.links[2] = int32(2*n + gs)
			fl.links[3] = int32(2*n + f.groups + gd)
			fl.nlinks = 4
		}
	}
	return fl
}

// releaseFlow returns a flow to the pool (see the ownership rule on flow).
func (f *Fabric) releaseFlow(fl *flow) {
	fl.proc = nil
	fl.link = ""
	f.free = append(f.free, fl)
}

// Transfer moves bytes from node src to node dst, blocking the calling
// process until the transfer (including protocol latency) completes.
// Transfers between a node and itself are rejected: local staging copies
// are intra-node memory operations and are priced by the cluster model.
func (f *Fabric) Transfer(p *sim.Proc, src, dst int, bytes int64) error {
	if src == dst {
		return fmt.Errorf("network: transfer from node %d to itself (use a local copy)", src)
	}
	if src < 0 || src >= f.cfg.Nodes || dst < 0 || dst >= f.cfg.Nodes {
		return fmt.Errorf("network: endpoints %d->%d out of range [0,%d)", src, dst, f.cfg.Nodes)
	}
	if bytes < 0 {
		return fmt.Errorf("network: negative transfer size %d", bytes)
	}
	latency := f.cfg.Latency
	if t := f.cfg.Topology; t != nil && t.groupOf(src) != t.groupOf(dst) {
		latency += t.GlobalLatency
	}
	if latency > 0 {
		if err := p.Wait(latency); err != nil {
			return err
		}
	}
	if bytes == 0 {
		return nil
	}
	fl := f.newFlow(p, src, dst, float64(bytes))
	if rec := f.env.Recorder(); rec.Enabled() {
		fl.link = obs.LinkLabel(src, dst)
		rec.FlowStart(fl.link, src, dst, fl.size)
	}
	f.settle()
	fl.idx = int32(len(f.flows))
	f.flows = append(f.flows, fl)
	f.reallocate()
	// Block until the completion callback wakes us.
	if err := p.ParkOn(fl); err != nil {
		// Interrupted: remove the flow and re-balance survivors.
		f.settle()
		f.remove(fl)
		f.flowEnd(fl)
		f.reallocate()
		f.releaseFlow(fl)
		return err
	}
	return nil
}

// flowEnd emits the instrumentation record for a flow leaving the fabric.
func (f *Fabric) flowEnd(fl *flow) {
	if fl.link == "" {
		return
	}
	f.env.Recorder().FlowEnd(fl.link, fl.src, fl.dst, fl.size-fl.remaining)
}

// settle charges elapsed time against every active flow at current rates.
// The dt == 0 cheap-exit matters: re-balance points (completion events,
// interrupt cleanup, degradation boundaries) frequently coincide at one
// timestamp, and only the first settle at that instant may walk the flows.
func (f *Fabric) settle() {
	dt := f.env.Now() - f.lastSettle
	f.lastSettle = f.env.Now()
	if dt <= 0 {
		return
	}
	for _, fl := range f.flows {
		progress := fl.rate * dt
		if progress > fl.remaining {
			progress = fl.remaining
		}
		fl.remaining -= progress
		f.totalBytes += progress
	}
}

// remove deletes a flow from the active set via its recorded slot,
// shifting the tail down (order is semantically significant: assignRates
// fixes flows in stable order and the completion path wakes processes in
// flow order, so a swap-remove would perturb determinism).
func (f *Fabric) remove(fl *flow) {
	i := int(fl.idx)
	if i < 0 || i >= len(f.flows) || f.flows[i] != fl {
		return
	}
	copy(f.flows[i:], f.flows[i+1:])
	last := len(f.flows) - 1
	f.flows[last] = nil
	f.flows = f.flows[:last]
	for ; i < last; i++ {
		f.flows[i].idx = int32(i)
	}
	fl.idx = -1
}

// reallocate recomputes max-min fair rates and schedules the next
// completion event.
func (f *Fabric) reallocate() {
	f.next.Cancel()
	f.next = sim.Timer{}
	if len(f.flows) == 0 {
		return
	}
	f.assignRates()
	// Earliest completion among active flows.
	next := math.Inf(1)
	for _, fl := range f.flows {
		if fl.rate <= 0 {
			continue
		}
		t := fl.remaining / fl.rate
		if t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		return
	}
	f.next = f.env.AtTimer(f.env.Now()+next, f.onEventFn)
}

// onEvent fires at the earliest projected completion: settle progress,
// complete exhausted flows, and re-balance the rest.
func (f *Fabric) onEvent() {
	f.next = sim.Timer{}
	f.settle()
	// A flow completes when its residual is sub-byte, or would drain in
	// less time than the clock can resolve (guarding against an infinite
	// reschedule loop when now+dt rounds back to now).
	const epsBytes = 1e-3
	const epsTime = 1e-9
	w := 0
	for _, fl := range f.flows {
		if fl.remaining <= epsBytes || (fl.rate > 0 && fl.remaining/fl.rate <= epsTime) {
			f.totalBytes += fl.remaining
			fl.remaining = 0
			f.flowEnd(fl)
			fl.idx = -1
			if !fl.done {
				fl.done = true
				fl.proc.Unpark()
				f.releaseFlow(fl)
			}
			// An already-done flow was interrupted at this same instant;
			// its Transfer error path owns (and releases) the record.
		} else {
			fl.idx = int32(w)
			f.flows[w] = fl
			w++
		}
	}
	for i := w; i < len(f.flows); i++ {
		f.flows[i] = nil
	}
	f.flows = f.flows[:w]
	f.reallocate()
}

// assignRates computes a max-min fair allocation subject to per-node
// egress/ingress capacities, per-group global-link capacities (when a
// dragonfly topology is configured), and the per-flow cap, using
// progressive water-filling over the precomputed per-flow constraint
// lists. All state lives in scratch buffers on the Fabric; the loop
// allocates nothing.
func (f *Fabric) assignRates() {
	n := f.cfg.Nodes
	// Transient degradation scales every capacity (and the per-flow cap
	// below); window boundaries re-settle and call back in here, so the
	// factor is constant between reallocations.
	factor := f.capacityFactor(f.env.Now())
	rem, count := f.rem, f.count
	for i := 0; i < n; i++ {
		rem[i] = f.cfg.bandwidthOf(i) * factor   // egress
		rem[n+i] = f.cfg.bandwidthOf(i) * factor // ingress
	}
	for g := 0; g < f.groups; g++ {
		rem[2*n+g] = f.cfg.Topology.GlobalBandwidth * factor          // uplink of group g
		rem[2*n+f.groups+g] = f.cfg.Topology.GlobalBandwidth * factor // downlink of group g
	}
	for i := range count {
		count[i] = 0
	}
	perFlowCap := f.cfg.PerFlowCap * factor

	unfixed := append(f.unfixed[:0], f.flows...)
	for _, fl := range unfixed {
		for _, l := range fl.links[:fl.nlinks] {
			count[l]++
		}
	}
	for len(unfixed) > 0 {
		// Bottleneck fair share across all constrained links.
		share := math.Inf(1)
		for l := 0; l < f.nLinks; l++ {
			if count[l] > 0 {
				if s := rem[l] / float64(count[l]); s < share {
					share = s
				}
			}
		}
		if perFlowCap > 0 && perFlowCap <= share {
			// The protocol cap binds before any link: every remaining flow
			// gets the cap.
			for _, fl := range unfixed {
				fl.rate = perFlowCap
			}
			break
		}
		// Fix flows crossing a bottleneck link at the fair share,
		// iterating in stable flow order for determinism; survivors are
		// compacted in place.
		fixedAny := false
		w := 0
		for _, fl := range unfixed {
			bottlenecked := false
			for _, l := range fl.links[:fl.nlinks] {
				if rem[l]/float64(count[l]) <= share+1e-9 {
					bottlenecked = true
					break
				}
			}
			if bottlenecked {
				fl.rate = share
				for _, l := range fl.links[:fl.nlinks] {
					rem[l] -= share
					count[l]--
				}
				fixedAny = true
			} else {
				unfixed[w] = fl
				w++
			}
		}
		unfixed = unfixed[:w]
		if !fixedAny {
			// Defensive: should not happen; avoid an infinite loop.
			for _, fl := range unfixed {
				fl.rate = share
			}
			break
		}
	}
	// Keep the (possibly grown) scratch backing for the next reallocation.
	// Stale flow refs in the backing are harmless: flows are pooled for
	// the fabric's lifetime and the scratch is always rewritten from
	// f.flows before being read.
	f.unfixed = unfixed[:0]
}
