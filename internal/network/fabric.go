// Package network models the cluster interconnect (Cray Aries on Cori) for
// remote staging transfers. Each node has finite NIC injection (egress) and
// ejection (ingress) bandwidth, each staging flow is additionally capped by
// the effective per-flow throughput of the staging protocol, and concurrent
// flows share the fabric with max-min fairness. The model is progress-based:
// whenever a flow joins or completes, the remaining bytes of every active
// flow are settled at the old rates and rates are recomputed, so emergent
// sharing (e.g., two analyses pulling from the same producer node, the C1.4
// pattern) comes out of the dynamics rather than a static formula.
package network

import (
	"errors"
	"fmt"
	"math"

	"ensemblekit/internal/obs"
	"ensemblekit/internal/sim"
)

// Config sets the fabric's capacities.
type Config struct {
	// Nodes is the number of endpoints.
	Nodes int
	// NICBandwidth is the per-node injection and ejection bandwidth in
	// bytes/s.
	NICBandwidth float64
	// Latency is the protocol latency added to every transfer in seconds.
	Latency float64
	// PerFlowCap is the maximum throughput of a single flow in bytes/s
	// (the effective staging protocol throughput); 0 means uncapped.
	PerFlowCap float64
	// NodeBandwidth optionally overrides the NIC bandwidth of individual
	// endpoints (by index). Zero entries keep NICBandwidth. This lets a
	// storage tier (burst buffer, parallel file system) be modeled as an
	// extra endpoint with its own aggregate bandwidth.
	NodeBandwidth []float64
	// Topology optionally adds dragonfly group structure: inter-group
	// flows additionally share per-group global links and pay extra
	// latency. Nil keeps the flat all-to-all fabric.
	Topology *Dragonfly
}

// bandwidthOf returns the capacity of endpoint i.
func (c Config) bandwidthOf(i int) float64 {
	if i < len(c.NodeBandwidth) && c.NodeBandwidth[i] > 0 {
		return c.NodeBandwidth[i]
	}
	return c.NICBandwidth
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return errors.New("network: Nodes must be positive")
	case c.NICBandwidth <= 0:
		return errors.New("network: NICBandwidth must be positive")
	case c.Latency < 0:
		return errors.New("network: Latency must be non-negative")
	case c.PerFlowCap < 0:
		return errors.New("network: PerFlowCap must be non-negative")
	}
	if c.Topology != nil {
		if err := c.Topology.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Flow is an in-flight transfer.
type flow struct {
	src, dst  int
	remaining float64 // bytes
	rate      float64 // bytes/s under the current allocation
	proc      *sim.Proc
	done      bool
	// size is the requested transfer size; size-remaining is the bytes
	// delivered, reported on the flow-end instrumentation event.
	size float64
	// link is the precomputed obs label ("n0->n1"), empty when
	// instrumentation is off.
	link string
}

// degradeWindow is a transient capacity-degradation interval: while
// active, every link capacity and the per-flow cap are multiplied by
// factor.
type degradeWindow struct {
	start, end, factor float64
}

// Fabric is the interconnect model bound to a simulation environment.
type Fabric struct {
	env        *sim.Env
	cfg        Config
	flows      []*flow
	lastSettle float64
	cancelNext func()
	// TotalBytes counts all bytes ever delivered (for reporting).
	totalBytes float64
	// degrade holds transient capacity-degradation windows (fault
	// injection); boundary crossings re-settle and re-balance all flows.
	degrade []degradeWindow
}

// NewFabric builds a fabric over the environment.
func NewFabric(env *sim.Env, cfg Config) (*Fabric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Fabric{env: env, cfg: cfg}, nil
}

// Degrade installs a transient degradation window: between virtual times
// start and end every link capacity and the per-flow protocol cap are
// scaled by factor (0 < factor <= 1). Overlapping windows compound.
// Boundary events settle in-flight transfers at the old rates and
// re-balance at the new ones, so a flow spanning a window boundary pays
// exactly the degraded rate for exactly the degraded interval. Install
// windows before Env.Run for deterministic replay.
func (f *Fabric) Degrade(start, end, factor float64) error {
	if factor <= 0 || factor > 1 {
		return fmt.Errorf("network: degradation factor %v outside (0,1]", factor)
	}
	if end <= start {
		return fmt.Errorf("network: degradation window [%v,%v) is empty", start, end)
	}
	f.degrade = append(f.degrade, degradeWindow{start: start, end: end, factor: factor})
	rebalance := func() {
		f.settle()
		f.reallocate()
	}
	f.env.At(start, func() {
		if rec := f.env.Recorder(); rec.Enabled() {
			rec.Fault("fabric", "degradation", obs.NoNode, factor)
		}
		rebalance()
	})
	f.env.At(end, rebalance)
	return nil
}

// capacityFactor is the compound degradation factor at virtual time t.
func (f *Fabric) capacityFactor(t float64) float64 {
	factor := 1.0
	for _, w := range f.degrade {
		if t >= w.start && t < w.end {
			factor *= w.factor
		}
	}
	return factor
}

// ActiveFlows returns the number of in-flight transfers.
func (f *Fabric) ActiveFlows() int { return len(f.flows) }

// TotalBytes returns the cumulative bytes delivered.
func (f *Fabric) TotalBytes() float64 { return f.totalBytes }

// Transfer moves bytes from node src to node dst, blocking the calling
// process until the transfer (including protocol latency) completes.
// Transfers between a node and itself are rejected: local staging copies
// are intra-node memory operations and are priced by the cluster model.
func (f *Fabric) Transfer(p *sim.Proc, src, dst int, bytes int64) error {
	if src == dst {
		return fmt.Errorf("network: transfer from node %d to itself (use a local copy)", src)
	}
	if src < 0 || src >= f.cfg.Nodes || dst < 0 || dst >= f.cfg.Nodes {
		return fmt.Errorf("network: endpoints %d->%d out of range [0,%d)", src, dst, f.cfg.Nodes)
	}
	if bytes < 0 {
		return fmt.Errorf("network: negative transfer size %d", bytes)
	}
	latency := f.cfg.Latency
	if t := f.cfg.Topology; t != nil && t.groupOf(src) != t.groupOf(dst) {
		latency += t.GlobalLatency
	}
	if latency > 0 {
		if err := p.Wait(latency); err != nil {
			return err
		}
	}
	if bytes == 0 {
		return nil
	}
	fl := &flow{src: src, dst: dst, remaining: float64(bytes), proc: p, size: float64(bytes)}
	if rec := f.env.Recorder(); rec.Enabled() {
		fl.link = obs.LinkLabel(src, dst)
		rec.FlowStart(fl.link, src, dst, fl.size)
	}
	f.settle()
	f.flows = append(f.flows, fl)
	f.reallocate()
	// Block until the completion callback wakes us.
	err := f.block(p, fl)
	if err != nil {
		// Interrupted: remove the flow and re-balance survivors.
		f.settle()
		f.remove(fl)
		f.flowEnd(fl)
		f.reallocate()
		return err
	}
	return nil
}

// flowEnd emits the instrumentation record for a flow leaving the fabric.
func (f *Fabric) flowEnd(fl *flow) {
	if fl.link == "" {
		return
	}
	f.env.Recorder().FlowEnd(fl.link, fl.src, fl.dst, fl.size-fl.remaining)
}

// block parks the process until its flow completes. If the process is
// interrupted, marking the flow done prevents a later spurious Unpark from
// the completion path.
func (f *Fabric) block(p *sim.Proc, fl *flow) error {
	return p.Park(func() { fl.done = true })
}

// settle charges elapsed time against every active flow at current rates.
func (f *Fabric) settle() {
	dt := f.env.Now() - f.lastSettle
	f.lastSettle = f.env.Now()
	if dt <= 0 {
		return
	}
	for _, fl := range f.flows {
		progress := fl.rate * dt
		if progress > fl.remaining {
			progress = fl.remaining
		}
		fl.remaining -= progress
		f.totalBytes += progress
	}
}

// remove deletes a flow from the active set.
func (f *Fabric) remove(fl *flow) {
	for i, q := range f.flows {
		if q == fl {
			f.flows = append(f.flows[:i], f.flows[i+1:]...)
			return
		}
	}
}

// reallocate recomputes max-min fair rates and schedules the next
// completion event.
func (f *Fabric) reallocate() {
	if f.cancelNext != nil {
		f.cancelNext()
		f.cancelNext = nil
	}
	if len(f.flows) == 0 {
		return
	}
	f.assignRates()
	// Earliest completion among active flows.
	next := math.Inf(1)
	for _, fl := range f.flows {
		if fl.rate <= 0 {
			continue
		}
		t := fl.remaining / fl.rate
		if t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		return
	}
	at := f.env.Now() + next
	f.cancelNext = f.env.AtCancelable(at, f.onEvent)
}

// onEvent fires at the earliest projected completion: settle progress,
// complete exhausted flows, and re-balance the rest.
func (f *Fabric) onEvent() {
	f.cancelNext = nil
	f.settle()
	// A flow completes when its residual is sub-byte, or would drain in
	// less time than the clock can resolve (guarding against an infinite
	// reschedule loop when now+dt rounds back to now).
	const epsBytes = 1e-3
	const epsTime = 1e-9
	var live []*flow
	for _, fl := range f.flows {
		if fl.remaining <= epsBytes || (fl.rate > 0 && fl.remaining/fl.rate <= epsTime) {
			f.totalBytes += fl.remaining
			fl.remaining = 0
			f.flowEnd(fl)
			if !fl.done {
				fl.done = true
				fl.proc.Unpark()
			}
		} else {
			live = append(live, fl)
		}
	}
	f.flows = live
	f.reallocate()
}

// assignRates computes a max-min fair allocation subject to per-node
// egress/ingress capacities, per-group global-link capacities (when a
// dragonfly topology is configured), and the per-flow cap, using
// progressive water-filling over a generic link-constraint set.
func (f *Fabric) assignRates() {
	// Link layout: [0,N) egress, [N,2N) ingress, then per-group global
	// uplinks and downlinks when a topology is configured.
	n := f.cfg.Nodes
	nLinks := 2 * n
	groups := 0
	if f.cfg.Topology != nil {
		groups = f.cfg.Topology.groups(n)
		nLinks += 2 * groups
	}
	// Transient degradation scales every capacity (and the per-flow cap
	// below); window boundaries re-settle and call back in here, so the
	// factor is constant between reallocations.
	factor := f.capacityFactor(f.env.Now())
	rem := make([]float64, nLinks)
	count := make([]int, nLinks)
	for i := 0; i < n; i++ {
		rem[i] = f.cfg.bandwidthOf(i) * factor   // egress
		rem[n+i] = f.cfg.bandwidthOf(i) * factor // ingress
	}
	for g := 0; g < groups; g++ {
		rem[2*n+g] = f.cfg.Topology.GlobalBandwidth * factor        // uplink of group g
		rem[2*n+groups+g] = f.cfg.Topology.GlobalBandwidth * factor // downlink of group g
	}
	perFlowCap := f.cfg.PerFlowCap * factor

	// Per-flow constraint lists.
	linksOf := func(fl *flow) []int {
		links := []int{fl.src, n + fl.dst}
		if t := f.cfg.Topology; t != nil {
			gs, gd := t.groupOf(fl.src), t.groupOf(fl.dst)
			if gs != gd {
				links = append(links, 2*n+gs, 2*n+groups+gd)
			}
		}
		return links
	}
	unfixed := make([]*flow, len(f.flows))
	copy(unfixed, f.flows)
	flowLinks := make(map[*flow][]int, len(unfixed))
	for _, fl := range unfixed {
		ls := linksOf(fl)
		flowLinks[fl] = ls
		for _, l := range ls {
			count[l]++
		}
	}
	for len(unfixed) > 0 {
		// Bottleneck fair share across all constrained links.
		share := math.Inf(1)
		for l := 0; l < nLinks; l++ {
			if count[l] > 0 {
				if s := rem[l] / float64(count[l]); s < share {
					share = s
				}
			}
		}
		if perFlowCap > 0 && perFlowCap <= share {
			// The protocol cap binds before any link: every remaining flow
			// gets the cap.
			for _, fl := range unfixed {
				fl.rate = perFlowCap
			}
			return
		}
		// Fix flows crossing a bottleneck link at the fair share,
		// iterating in stable flow order for determinism.
		fixedAny := false
		var rest []*flow
		for _, fl := range unfixed {
			bottlenecked := false
			for _, l := range flowLinks[fl] {
				if rem[l]/float64(count[l]) <= share+1e-9 {
					bottlenecked = true
					break
				}
			}
			if bottlenecked {
				fl.rate = share
				for _, l := range flowLinks[fl] {
					rem[l] -= share
					count[l]--
				}
				fixedAny = true
			} else {
				rest = append(rest, fl)
			}
		}
		unfixed = rest
		if !fixedAny {
			// Defensive: should not happen; avoid an infinite loop.
			for _, fl := range unfixed {
				fl.rate = share
			}
			return
		}
	}
}
