package network

import (
	"errors"
	"fmt"
)

// Dragonfly describes the optional two-level topology of the fabric,
// modeling a Cray Aries dragonfly (the paper's interconnect) at the
// granularity that matters for staging flows: nodes are partitioned into
// groups with all-to-all local connectivity; traffic between groups
// traverses the source group's global uplink and the destination group's
// global downlink, each with a finite aggregate bandwidth shared by all
// crossing flows.
type Dragonfly struct {
	// GroupSize is the number of nodes per group (the last group may be
	// smaller).
	GroupSize int
	// GlobalBandwidth is the aggregate bandwidth of each group's global
	// uplink and downlink in bytes/s.
	GlobalBandwidth float64
	// GlobalLatency is added (once) to transfers that cross groups.
	GlobalLatency float64
}

// Validate checks the topology parameters.
func (d Dragonfly) Validate() error {
	if d.GroupSize <= 0 {
		return errors.New("network: dragonfly GroupSize must be positive")
	}
	if d.GlobalBandwidth <= 0 {
		return errors.New("network: dragonfly GlobalBandwidth must be positive")
	}
	if d.GlobalLatency < 0 {
		return errors.New("network: dragonfly GlobalLatency must be non-negative")
	}
	return nil
}

// groupOf returns the group index of a node.
func (d Dragonfly) groupOf(node int) int { return node / d.GroupSize }

// groups returns the number of groups for n nodes.
func (d Dragonfly) groups(n int) int { return (n + d.GroupSize - 1) / d.GroupSize }

// String describes the topology.
func (d Dragonfly) String() string {
	return fmt.Sprintf("dragonfly{groupSize=%d, globalBW=%.1fGB/s}", d.GroupSize, d.GlobalBandwidth/1e9)
}
