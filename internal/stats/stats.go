// Package stats provides the descriptive statistics used by the efficiency
// model and the performance indicators: means, population standard
// deviations (the paper's Equation 9 uses the population form), percentiles,
// and streaming accumulation via Welford's algorithm.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs
// (sqrt of the mean squared deviation), or NaN for an empty slice.
// The paper's objective function F (Equation 9) subtracts this quantity
// from the mean, so the population form (divide by N) is used throughout.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Variance returns the population variance of xs, or NaN for an empty slice.
func Variance(xs []float64) float64 {
	s := StdDev(xs)
	return s * s
}

// Min returns the smallest element of xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs (0 for an empty slice).
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns NaN for an empty slice.
// The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Welford accumulates a stream of observations and reports count, mean and
// population standard deviation without storing the samples.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations added so far.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean, or NaN if no observations were added.
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// StdDev returns the running population standard deviation,
// or NaN if no observations were added.
func (w *Welford) StdDev() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return math.Sqrt(w.m2 / float64(w.n))
}

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. All fields are NaN (N=0) when xs is
// empty.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{N: 0, Mean: nan, StdDev: nan, Min: nan, Max: nan, Median: nan}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		Median: Median(xs),
	}
}

// MeanMinusStd returns mean(xs) - stddev(xs): the aggregation the paper's
// objective function F applies to per-member performance indicators
// (Equation 9). NaN for an empty slice.
func MeanMinusStd(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Mean(xs) - StdDev(xs)
}
