package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2 (population form)", got)
	}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
}

func TestEmptyInputsAreNaN(t *testing.T) {
	for name, f := range map[string]func([]float64) float64{
		"Mean":         Mean,
		"StdDev":       StdDev,
		"Min":          Min,
		"Max":          Max,
		"Median":       Median,
		"MeanMinusStd": MeanMinusStd,
	} {
		if got := f(nil); !math.IsNaN(got) {
			t.Errorf("%s(nil) = %v, want NaN", name, got)
		}
	}
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %v, want 0", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 4, 1.5}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 4 {
		t.Errorf("Max = %v, want 4", got)
	}
	if got := Sum(xs); !almostEqual(got, 7.5, 1e-12) {
		t.Errorf("Sum = %v, want 7.5", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-10, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{42}, 73); got != 42 {
		t.Errorf("Percentile(single, 73) = %v, want 42", got)
	}
	if got := Percentile(xs, math.NaN()); !math.IsNaN(got) {
		t.Errorf("Percentile(NaN) = %v, want NaN", got)
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 25); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("Percentile interp = %v, want 2.5", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		w.Add(xs[i])
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d, want %d", w.N(), len(xs))
	}
	if !almostEqual(w.Mean(), Mean(xs), 1e-9) {
		t.Errorf("Welford mean %v != batch mean %v", w.Mean(), Mean(xs))
	}
	if !almostEqual(w.StdDev(), StdDev(xs), 1e-9) {
		t.Errorf("Welford std %v != batch std %v", w.StdDev(), StdDev(xs))
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.StdDev()) {
		t.Errorf("empty Welford should report NaN, got mean=%v std=%v", w.Mean(), w.StdDev())
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Errorf("unexpected summary: %+v", s)
	}
	e := Summarize(nil)
	if e.N != 0 || !math.IsNaN(e.Mean) {
		t.Errorf("empty summary should be NaN-filled: %+v", e)
	}
}

// Property: F = mean - std is never above the mean, and for a constant
// sample equals the mean exactly.
func TestMeanMinusStdProperties(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Bound magnitude to avoid float overflow in squared terms.
			xs = append(xs, math.Mod(x, 1e6))
		}
		if len(xs) == 0 {
			return true
		}
		f := MeanMinusStd(xs)
		return f <= Mean(xs)+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	if got := MeanMinusStd([]float64{3, 3, 3}); !almostEqual(got, 3, 1e-12) {
		t.Errorf("constant sample: F = %v, want 3", got)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileProperties(t *testing.T) {
	prop := func(raw []float64, p1, p2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, math.Mod(x, 1e9))
		}
		if len(xs) == 0 {
			return true
		}
		p1 = math.Mod(math.Abs(p1), 100)
		p2 = math.Mod(math.Abs(p2), 100)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		lo, hi := Percentile(xs, p1), Percentile(xs, p2)
		return lo <= hi+1e-9 && lo >= Min(xs)-1e-9 && hi <= Max(xs)+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
