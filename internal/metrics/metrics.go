// Package metrics computes the paper's traditional metrics (Table 1) from
// execution traces, at the three levels of granularity the paper defines:
// ensemble component (execution time, LLC miss ratio, memory intensity,
// instructions per cycle), ensemble member (member makespan), and workflow
// ensemble (ensemble makespan).
package metrics

import (
	"errors"
	"math"

	"ensemblekit/internal/stats"
	"ensemblekit/internal/trace"
)

// Component holds the component-level metrics of Table 1.
type Component struct {
	// Name identifies the component.
	Name string
	// Kind distinguishes simulations from analyses.
	Kind trace.Kind
	// Member is the owning ensemble member index.
	Member int
	// ExecutionTime is the time spent in the component.
	ExecutionTime float64
	// LLCMissRatio is LLC misses / LLC references.
	LLCMissRatio float64
	// MemoryIntensity is LLC misses / instructions.
	MemoryIntensity float64
	// IPC is instructions / cycles.
	IPC float64
}

// ForComponent computes the Table 1 component metrics from a trace.
// Counter-derived metrics are NaN when the trace carries no counters
// (the real backend).
func ForComponent(c *trace.ComponentTrace) Component {
	total := c.TotalCounters()
	out := Component{
		Name:            c.Name,
		Kind:            c.Kind,
		Member:          c.Member,
		ExecutionTime:   c.ExecutionTime(),
		LLCMissRatio:    math.NaN(),
		MemoryIntensity: math.NaN(),
		IPC:             math.NaN(),
	}
	if total.LLCRefs > 0 {
		out.LLCMissRatio = total.LLCMisses / total.LLCRefs
	}
	if total.Instructions > 0 {
		out.MemoryIntensity = total.LLCMisses / total.Instructions
	}
	if total.Cycles > 0 {
		out.IPC = total.Instructions / total.Cycles
	}
	return out
}

// Member holds the member-level metric of Table 1.
type Member struct {
	// Index is the member index.
	Index int
	// Makespan is the timespan between the simulation start and the latest
	// analysis end.
	Makespan float64
}

// Ensemble aggregates all Table 1 metrics for one execution.
type Ensemble struct {
	// Config names the evaluated configuration.
	Config string
	// Components holds the component-level metrics, members in order,
	// simulation before analyses.
	Components []Component
	// Members holds the member makespans.
	Members []Member
	// Makespan is the workflow-ensemble makespan: the maximum member
	// makespan.
	Makespan float64
}

// FromTrace computes every Table 1 metric from an ensemble trace.
func FromTrace(t *trace.EnsembleTrace) (Ensemble, error) {
	if t == nil || len(t.Members) == 0 {
		return Ensemble{}, errors.New("metrics: empty trace")
	}
	out := Ensemble{Config: t.Config}
	for _, m := range t.Members {
		for _, c := range m.Components() {
			out.Components = append(out.Components, ForComponent(c))
		}
		out.Members = append(out.Members, Member{Index: m.Index, Makespan: m.Makespan()})
	}
	out.Makespan = t.Makespan()
	return out, nil
}

// Straggler is an ensemble member whose makespan exceeds the ensemble
// median by the detection threshold.
type Straggler struct {
	// Index is the member index.
	Index int
	// Makespan is the member's makespan.
	Makespan float64
	// Excess is (makespan - median) / median.
	Excess float64
}

// Stragglers identifies slow ensemble members: those whose makespan
// exceeds the median member makespan by more than the threshold fraction
// (e.g. 0.1 = 10%). The paper observes that spotting stragglers from
// traditional metrics requires "diligently inspecting and relating
// independent measurements" — this automates exactly that inspection,
// since stragglers determine the ensemble makespan.
func (e Ensemble) Stragglers(threshold float64) []Straggler {
	if threshold <= 0 {
		threshold = 0.1
	}
	ms := make([]float64, len(e.Members))
	for i, m := range e.Members {
		ms[i] = m.Makespan
	}
	median := stats.Median(ms)
	if math.IsNaN(median) || median <= 0 {
		return nil
	}
	var out []Straggler
	for _, m := range e.Members {
		excess := (m.Makespan - median) / median
		if excess > threshold {
			out = append(out, Straggler{Index: m.Index, Makespan: m.Makespan, Excess: excess})
		}
	}
	return out
}

// KindSummary summarizes one component-level metric across all components
// of a kind.
type KindSummary struct {
	Kind            trace.Kind
	ExecutionTime   stats.Summary
	LLCMissRatio    stats.Summary
	MemoryIntensity stats.Summary
	IPC             stats.Summary
}

// ByKind summarizes component metrics per kind (the form of the paper's
// Figure 3, which reports simulations and analyses separately).
func (e Ensemble) ByKind(kind trace.Kind) KindSummary {
	var execT, miss, intensity, ipc []float64
	for _, c := range e.Components {
		if c.Kind != kind {
			continue
		}
		execT = append(execT, c.ExecutionTime)
		if !math.IsNaN(c.LLCMissRatio) {
			miss = append(miss, c.LLCMissRatio)
		}
		if !math.IsNaN(c.MemoryIntensity) {
			intensity = append(intensity, c.MemoryIntensity)
		}
		if !math.IsNaN(c.IPC) {
			ipc = append(ipc, c.IPC)
		}
	}
	return KindSummary{
		Kind:            kind,
		ExecutionTime:   stats.Summarize(execT),
		LLCMissRatio:    stats.Summarize(miss),
		MemoryIntensity: stats.Summarize(intensity),
		IPC:             stats.Summarize(ipc),
	}
}
