package metrics

import (
	"math"
	"testing"

	"ensemblekit/internal/trace"
)

func component(name string, kind trace.Kind, member int, start, stageDur float64, withCounters bool) *trace.ComponentTrace {
	c := &trace.ComponentTrace{Name: name, Kind: kind, Member: member, Cores: 8, Nodes: []int{0}, Start: start}
	t := start
	stages := trace.SimulationStages()
	if kind == trace.KindAnalysis {
		stages = trace.AnalysisStages()
	}
	for i := 0; i < 4; i++ {
		step := trace.StepRecord{Index: i}
		for _, s := range stages {
			rec := trace.StageRecord{Stage: s, Start: t, Duration: stageDur}
			if withCounters {
				rec.Counters = trace.Counters{Instructions: 1000, Cycles: 2000, LLCRefs: 100, LLCMisses: 25}
			}
			t += stageDur
			step.Stages = append(step.Stages, rec)
		}
		c.Steps = append(c.Steps, step)
	}
	c.End = t
	return c
}

func sampleTrace(withCounters bool) *trace.EnsembleTrace {
	return &trace.EnsembleTrace{
		Config: "C-test",
		Members: []*trace.MemberTrace{
			{
				Index:      0,
				Simulation: component("m0.sim", trace.KindSimulation, 0, 0, 2, withCounters),
				Analyses:   []*trace.ComponentTrace{component("m0.ana0", trace.KindAnalysis, 0, 1, 2, withCounters)},
			},
			{
				Index:      1,
				Simulation: component("m1.sim", trace.KindSimulation, 1, 0, 3, withCounters),
				Analyses:   []*trace.ComponentTrace{component("m1.ana0", trace.KindAnalysis, 1, 1, 3, withCounters)},
			},
		},
	}
}

func TestForComponentWithCounters(t *testing.T) {
	c := component("x", trace.KindSimulation, 0, 0, 2, true)
	m := ForComponent(c)
	if m.ExecutionTime != 24 { // 4 steps x 3 stages x 2s
		t.Errorf("execution time = %v, want 24", m.ExecutionTime)
	}
	if math.Abs(m.LLCMissRatio-0.25) > 1e-12 {
		t.Errorf("miss ratio = %v, want 0.25", m.LLCMissRatio)
	}
	if math.Abs(m.MemoryIntensity-0.025) > 1e-12 {
		t.Errorf("memory intensity = %v, want 0.025", m.MemoryIntensity)
	}
	if math.Abs(m.IPC-0.5) > 1e-12 {
		t.Errorf("IPC = %v, want 0.5", m.IPC)
	}
}

func TestForComponentWithoutCounters(t *testing.T) {
	c := component("x", trace.KindAnalysis, 0, 0, 2, false)
	m := ForComponent(c)
	if !math.IsNaN(m.LLCMissRatio) || !math.IsNaN(m.MemoryIntensity) || !math.IsNaN(m.IPC) {
		t.Errorf("counter metrics should be NaN without counters: %+v", m)
	}
	if m.ExecutionTime != 24 {
		t.Errorf("execution time should still be measured: %v", m.ExecutionTime)
	}
}

func TestFromTrace(t *testing.T) {
	e, err := FromTrace(sampleTrace(true))
	if err != nil {
		t.Fatal(err)
	}
	if e.Config != "C-test" {
		t.Errorf("config = %q", e.Config)
	}
	if len(e.Components) != 4 {
		t.Fatalf("components = %d, want 4", len(e.Components))
	}
	if len(e.Members) != 2 {
		t.Fatalf("members = %d, want 2", len(e.Members))
	}
	// Member 0: analysis start 1, 24s -> ends 25; makespan 25 - 0 = 25.
	if e.Members[0].Makespan != 25 {
		t.Errorf("member 0 makespan = %v, want 25", e.Members[0].Makespan)
	}
	// Member 1: analysis ends at 1 + 36 = 37.
	if e.Members[1].Makespan != 37 {
		t.Errorf("member 1 makespan = %v, want 37", e.Members[1].Makespan)
	}
	if e.Makespan != 37 {
		t.Errorf("ensemble makespan = %v, want 37 (max member)", e.Makespan)
	}
}

func TestFromTraceEmpty(t *testing.T) {
	if _, err := FromTrace(nil); err == nil {
		t.Error("nil trace should fail")
	}
	if _, err := FromTrace(&trace.EnsembleTrace{}); err == nil {
		t.Error("empty trace should fail")
	}
}

func TestByKind(t *testing.T) {
	e, err := FromTrace(sampleTrace(true))
	if err != nil {
		t.Fatal(err)
	}
	sims := e.ByKind(trace.KindSimulation)
	anas := e.ByKind(trace.KindAnalysis)
	if sims.ExecutionTime.N != 2 || anas.ExecutionTime.N != 2 {
		t.Fatalf("per-kind counts wrong: %d sims, %d anas", sims.ExecutionTime.N, anas.ExecutionTime.N)
	}
	// sims: 24 and 36 -> mean 30.
	if math.Abs(sims.ExecutionTime.Mean-30) > 1e-12 {
		t.Errorf("sim mean exec = %v, want 30", sims.ExecutionTime.Mean)
	}
	if math.Abs(sims.LLCMissRatio.Mean-0.25) > 1e-12 {
		t.Errorf("sim mean miss ratio = %v, want 0.25", sims.LLCMissRatio.Mean)
	}
}

func TestByKindSkipsNaNCounters(t *testing.T) {
	e, err := FromTrace(sampleTrace(false))
	if err != nil {
		t.Fatal(err)
	}
	s := e.ByKind(trace.KindSimulation)
	if s.LLCMissRatio.N != 0 {
		t.Errorf("counterless traces should contribute no miss-ratio samples, got %d", s.LLCMissRatio.N)
	}
	if s.ExecutionTime.N != 2 {
		t.Errorf("execution times should still be summarized, got %d", s.ExecutionTime.N)
	}
}

func TestStragglers(t *testing.T) {
	e := Ensemble{Members: []Member{
		{Index: 0, Makespan: 100},
		{Index: 1, Makespan: 102},
		{Index: 2, Makespan: 101},
		{Index: 3, Makespan: 140}, // ~39% over the median
	}}
	got := e.Stragglers(0.1)
	if len(got) != 1 || got[0].Index != 3 {
		t.Fatalf("stragglers = %+v, want member 3 only", got)
	}
	if got[0].Excess < 0.3 || got[0].Excess > 0.5 {
		t.Errorf("excess = %v, want ~0.39", got[0].Excess)
	}
	// Uniform members: no stragglers.
	uniform := Ensemble{Members: []Member{{Makespan: 10}, {Makespan: 10}}}
	if s := uniform.Stragglers(0.1); len(s) != 0 {
		t.Errorf("uniform ensemble has stragglers: %+v", s)
	}
	// Default threshold kicks in for non-positive input.
	if s := e.Stragglers(0); len(s) != 1 {
		t.Errorf("default threshold: %+v", s)
	}
	// Degenerate: empty ensemble.
	if s := (Ensemble{}).Stragglers(0.1); s != nil {
		t.Errorf("empty ensemble: %+v", s)
	}
}
