package main

import "testing"

func TestRunExhaustive(t *testing.T) {
	if err := run(2, 1, 3, "exhaustive", "analytic", 3, 0, 1, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunGreedy(t *testing.T) {
	if err := run(2, 2, 3, "greedy", "analytic", 3, 0, 1, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunAnnealWithProgress(t *testing.T) {
	if err := run(2, 1, 3, "anneal", "analytic", 3, 200, 7, true, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunSimulatedObjective(t *testing.T) {
	if err := run(1, 1, 2, "exhaustive", "simulated", 2, 0, 1, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(2, 1, 3, "magic", "analytic", 3, 0, 1, false, 0); err == nil {
		t.Error("unknown mode should fail")
	}
	if err := run(2, 1, 3, "exhaustive", "oracle", 3, 0, 1, false, 0); err == nil {
		t.Error("unknown objective should fail")
	}
	// An ensemble that cannot fit: 4 members x 24 cores on 1 node.
	if err := run(4, 1, 1, "exhaustive", "analytic", 3, 0, 1, false, 0); err == nil {
		t.Error("infeasible instance should fail")
	}
}
