// Command placement searches for the workflow-ensemble placement that
// maximizes the paper's objective F(P^{U,A,P}) — the scheduling use the
// paper proposes as future work.
//
// Usage:
//
//	placement [-members N] [-analyses K] [-nodes M]
//	          [-mode exhaustive|greedy] [-objective analytic|simulated]
//	          [-top N]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/indicators"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/report"
	"ensemblekit/internal/runtime"
	"ensemblekit/internal/scheduler"
)

func main() {
	var (
		members   = flag.Int("members", 2, "ensemble members")
		analyses  = flag.Int("analyses", 1, "analyses per simulation")
		nodes     = flag.Int("nodes", 3, "nodes available")
		mode      = flag.String("mode", "exhaustive", "exhaustive or greedy")
		objective = flag.String("objective", "analytic", "analytic or simulated")
		top       = flag.Int("top", 5, "show the N best placements (exhaustive only)")
	)
	flag.Parse()
	if err := run(*members, *analyses, *nodes, *mode, *objective, *top); err != nil {
		fmt.Fprintf(os.Stderr, "placement: %v\n", err)
		os.Exit(1)
	}
}

func run(members, analyses, nodes int, mode, objective string, top int) error {
	spec := cluster.Cori(nodes)
	es := runtime.PaperEnsemble("search", members, analyses, 8)

	var obj scheduler.Objective
	switch objective {
	case "analytic":
		obj = scheduler.AnalyticObjective(spec, nil, es, indicators.StageUAP)
	case "simulated":
		obj = scheduler.SimulatedObjective(spec, es, runtime.SimOptions{}, indicators.StageUAP)
	default:
		return fmt.Errorf("unknown objective %q", objective)
	}

	switch mode {
	case "exhaustive":
		// Rank all candidates so -top can show more than the winner.
		shape := placement.Shape{
			SimCores:      placement.SimCores,
			AnalysisCores: repeat(placement.AnalysisCores, analyses),
			Members:       members,
		}
		candidates, err := placement.Enumerate(spec, shape, nodes)
		if err != nil {
			return err
		}
		type scored struct {
			p placement.Placement
			f float64
		}
		var all []scored
		for _, c := range candidates {
			f, err := obj(c)
			if err != nil {
				continue
			}
			all = append(all, scored{p: c, f: f})
		}
		if len(all) == 0 {
			return fmt.Errorf("no feasible placement for %d members x (1+%d) components on %d nodes",
				members, analyses, nodes)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].f > all[j].f })
		t := report.NewTable(
			fmt.Sprintf("Top placements by F(P^{U,A,P}) — %d members, %d analyses/sim, %d nodes, %d candidates",
				members, analyses, nodes, len(all)),
			"rank", "F", "nodes used", "placement")
		for i, s := range all {
			if i >= top {
				break
			}
			t.AddRow(i+1, s.f, s.p.M(), s.p.String())
		}
		fmt.Println(t.String())
	case "greedy":
		res, err := scheduler.GreedyLocalSearch(spec, es, nodes, obj)
		if err != nil {
			return err
		}
		fmt.Printf("best placement (greedy, %d evaluations): F = %s\n%s\n",
			res.Evaluated, report.FormatFloat(res.Score), res.Placement.String())
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}

func repeat(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}
