// Command placement searches for the workflow-ensemble placement that
// maximizes the paper's objective F(P^{U,A,P}) — the scheduling use the
// paper proposes as future work.
//
// Usage:
//
//	placement [-members N] [-analyses K] [-nodes M]
//	          [-mode exhaustive|greedy|anneal] [-objective analytic|simulated]
//	          [-top N] [-iterations N] [-seed N] [-progress]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/indicators"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/report"
	"ensemblekit/internal/runtime"
	"ensemblekit/internal/scheduler"
)

func main() {
	var (
		members    = flag.Int("members", 2, "ensemble members")
		analyses   = flag.Int("analyses", 1, "analyses per simulation")
		nodes      = flag.Int("nodes", 3, "nodes available")
		mode       = flag.String("mode", "exhaustive", "exhaustive, greedy, or anneal")
		objective  = flag.String("objective", "analytic", "analytic or simulated")
		top        = flag.Int("top", 5, "show the N best placements (exhaustive only)")
		iterations = flag.Int("iterations", 0, "annealing iterations (0 = default)")
		seed       = flag.Int64("seed", 1, "annealing RNG seed")
		progress   = flag.Bool("progress", false, "print periodic search progress to stderr")
	)
	flag.Parse()
	if err := run(*members, *analyses, *nodes, *mode, *objective, *top, *iterations, *seed, *progress); err != nil {
		fmt.Fprintf(os.Stderr, "placement: %v\n", err)
		os.Exit(1)
	}
}

func run(members, analyses, nodes int, mode, objective string, top, iterations int, seed int64, progress bool) error {
	spec := cluster.Cori(nodes)
	es := runtime.PaperEnsemble("search", members, analyses, 8)

	var obj scheduler.Objective
	switch objective {
	case "analytic":
		obj = scheduler.AnalyticObjective(spec, nil, es, indicators.StageUAP)
	case "simulated":
		obj = scheduler.SimulatedObjective(spec, es, runtime.SimOptions{}, indicators.StageUAP)
	default:
		return fmt.Errorf("unknown objective %q", objective)
	}

	switch mode {
	case "exhaustive":
		// Rank all candidates so -top can show more than the winner.
		shape := placement.Shape{
			SimCores:      placement.SimCores,
			AnalysisCores: repeat(placement.AnalysisCores, analyses),
			Members:       members,
		}
		candidates, err := placement.Enumerate(spec, shape, nodes)
		if err != nil {
			return err
		}
		type scored struct {
			p placement.Placement
			f float64
		}
		var all []scored
		for _, c := range candidates {
			f, err := obj(c)
			if err != nil {
				continue
			}
			all = append(all, scored{p: c, f: f})
		}
		if len(all) == 0 {
			return fmt.Errorf("no feasible placement for %d members x (1+%d) components on %d nodes",
				members, analyses, nodes)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].f > all[j].f })
		t := report.NewTable(
			fmt.Sprintf("Top placements by F(P^{U,A,P}) — %d members, %d analyses/sim, %d nodes, %d candidates",
				members, analyses, nodes, len(all)),
			"rank", "F", "nodes used", "placement")
		for i, s := range all {
			if i >= top {
				break
			}
			t.AddRow(i+1, s.f, s.p.M(), s.p.String())
		}
		fmt.Println(t.String())
	case "greedy", "anneal":
		var mon *scheduler.Monitor
		if progress {
			mon = &progressMonitor
		}
		res, err := scheduler.Search(scheduler.Strategy(mode), spec, es, nodes, obj, mon,
			scheduler.AnnealOptions{Iterations: iterations, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Printf("best placement (%s, %d evaluations): F = %s\n%s\n",
			mode, res.Evaluated, report.FormatFloat(res.Score), res.Placement.String())
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}

// progressMonitor prints search progress to stderr at the default cadence.
var progressMonitor = scheduler.Monitor{
	OnProgress: func(p scheduler.Progress) {
		marker := ""
		if p.Final {
			marker = " (final)"
		}
		fmt.Fprintf(os.Stderr, "[%s] %d evaluations, best F = %.4f, %s elapsed%s\n",
			p.Strategy, p.Evaluated, p.BestScore, p.Elapsed.Round(1e6), marker)
	},
}

func repeat(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}
