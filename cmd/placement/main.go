// Command placement searches for the workflow-ensemble placement that
// maximizes the paper's objective F(P^{U,A,P}) — the scheduling use the
// paper proposes as future work.
//
// Usage:
//
//	placement [-members N] [-analyses K] [-nodes M]
//	          [-mode exhaustive|greedy|anneal] [-objective analytic|simulated]
//	          [-top N] [-iterations N] [-seed N] [-progress] [-workers N]
//
// -workers routes simulated-objective evaluations through a campaign
// service: exhaustive candidates fan out over N workers and search
// revisits are answered from the content-addressed result cache.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"ensemblekit/internal/campaign"
	"ensemblekit/internal/cluster"
	"ensemblekit/internal/indicators"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/report"
	"ensemblekit/internal/runtime"
	"ensemblekit/internal/scheduler"
)

func main() {
	var (
		members    = flag.Int("members", 2, "ensemble members")
		analyses   = flag.Int("analyses", 1, "analyses per simulation")
		nodes      = flag.Int("nodes", 3, "nodes available")
		mode       = flag.String("mode", "exhaustive", "exhaustive, greedy, or anneal")
		objective  = flag.String("objective", "analytic", "analytic or simulated")
		top        = flag.Int("top", 5, "show the N best placements (exhaustive only)")
		iterations = flag.Int("iterations", 0, "annealing iterations (0 = default)")
		seed       = flag.Int64("seed", 1, "annealing RNG seed")
		progress   = flag.Bool("progress", false, "print periodic search progress to stderr")
		workers    = flag.Int("workers", 0, "evaluate simulated objectives through a campaign service with N workers (0 = serial)")
	)
	flag.Parse()
	if err := run(*members, *analyses, *nodes, *mode, *objective, *top, *iterations, *seed, *progress, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "placement: %v\n", err)
		os.Exit(1)
	}
}

func run(members, analyses, nodes int, mode, objective string, top, iterations int, seed int64, progress bool, workers int) error {
	spec := cluster.Cori(nodes)
	es := runtime.PaperEnsemble("search", members, analyses, 8)

	var svc *campaign.Service
	if workers > 0 && objective == "simulated" {
		var err error
		svc, err = campaign.NewService(campaign.Config{Workers: workers})
		if err != nil {
			return err
		}
		defer svc.Close()
	}

	var obj scheduler.Objective
	switch objective {
	case "analytic":
		obj = scheduler.AnalyticObjective(spec, nil, es, indicators.StageUAP)
	case "simulated":
		if svc != nil {
			obj = scheduler.ServiceObjective(svc, spec, es, runtime.SimOptions{}, indicators.StageUAP)
		} else {
			obj = scheduler.SimulatedObjective(spec, es, runtime.SimOptions{}, indicators.StageUAP)
		}
	default:
		return fmt.Errorf("unknown objective %q", objective)
	}

	switch mode {
	case "exhaustive":
		// Rank all candidates so -top can show more than the winner.
		shape := placement.Shape{
			SimCores:      placement.SimCores,
			AnalysisCores: repeat(placement.AnalysisCores, analyses),
			Members:       members,
		}
		candidates, err := placement.Enumerate(spec, shape, nodes)
		if err != nil {
			return err
		}
		if svc != nil {
			// Fan the whole candidate set out over the worker pool first;
			// the scoring loop below is then answered from the cache (or
			// attaches to the in-flight runs) in enumeration order.
			for _, c := range candidates {
				js, err := campaign.NewJob(spec, c, es, runtime.SimOptions{})
				if err != nil {
					continue
				}
				if _, err := svc.SubmitWait(context.Background(), js, campaign.SubmitOptions{Label: c.Name}); err != nil {
					break
				}
			}
		}
		type scored struct {
			p placement.Placement
			f float64
		}
		var all []scored
		for _, c := range candidates {
			f, err := obj(c)
			if err != nil {
				continue
			}
			all = append(all, scored{p: c, f: f})
		}
		if len(all) == 0 {
			return fmt.Errorf("no feasible placement for %d members x (1+%d) components on %d nodes",
				members, analyses, nodes)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].f > all[j].f })
		t := report.NewTable(
			fmt.Sprintf("Top placements by F(P^{U,A,P}) — %d members, %d analyses/sim, %d nodes, %d candidates",
				members, analyses, nodes, len(all)),
			"rank", "F", "nodes used", "placement")
		for i, s := range all {
			if i >= top {
				break
			}
			t.AddRow(i+1, s.f, s.p.M(), s.p.String())
		}
		fmt.Println(t.String())
	case "greedy", "anneal":
		var mon *scheduler.Monitor
		if progress {
			mon = &progressMonitor
		}
		res, err := scheduler.Search(scheduler.Strategy(mode), spec, es, nodes, obj, mon,
			scheduler.AnnealOptions{Iterations: iterations, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Printf("best placement (%s, %d evaluations): F = %s\n%s\n",
			mode, res.Evaluated, report.FormatFloat(res.Score), res.Placement.String())
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}

// progressMonitor prints search progress to stderr at the default cadence.
var progressMonitor = scheduler.Monitor{
	OnProgress: func(p scheduler.Progress) {
		marker := ""
		if p.Final {
			marker = " (final)"
		}
		fmt.Fprintf(os.Stderr, "[%s] %d evaluations, best F = %.4f, %s elapsed%s\n",
			p.Strategy, p.Evaluated, p.BestScore, p.Elapsed.Round(1e6), marker)
	},
}

func repeat(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}
