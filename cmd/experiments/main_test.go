package main

import (
	"os"
	"path/filepath"
	"testing"

	"ensemblekit/internal/experiments"
)

func TestRunSingleExperiments(t *testing.T) {
	cfg := experiments.Quick()
	for _, exp := range []string{"table2", "table4", "fig5", "fig7", "headline"} {
		if err := run(cfg, exp, ""); err != nil {
			t.Errorf("exp %q: %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(experiments.Quick(), "fig99", ""); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run(experiments.Quick(), "fig5", dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig5.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty CSV written")
	}
}
