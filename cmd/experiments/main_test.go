package main

import (
	"os"
	"path/filepath"
	"testing"

	"ensemblekit/internal/experiments"
	"ensemblekit/internal/obs"
)

func TestRunSingleExperiments(t *testing.T) {
	cfg := experiments.Quick()
	for _, exp := range []string{"table2", "table4", "fig5", "fig7", "headline"} {
		if err := run(cfg, exp, ""); err != nil {
			t.Errorf("exp %q: %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(experiments.Quick(), "fig99", ""); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run(experiments.Quick(), "fig5", dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig5.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty CSV written")
	}
}

func TestWriteReferenceObs(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ref.perfetto.json")
	if err := writeReferenceObs(experiments.Quick(), out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(data); err != nil {
		t.Fatalf("reference chrome trace invalid: %v", err)
	}
}
