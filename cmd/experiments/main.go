// Command experiments regenerates the paper's tables and figures on the
// simulated platform and prints them as aligned text tables (optionally
// CSV). This is the reproduction harness behind EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-exp all|table1|table2|table4|fig3|fig4|fig5|fig6|fig7|fig8|fig9|headline
//	                  |tiers|validation|buffers|aggregators|scaling|heterogeneous|topology
//	                  |sockets|intransit|faults]
//	            [-trials N] [-steps N] [-jitter F] [-seed N] [-quick] [-workers N]
//	            [-csv DIR] [-obs FILE] [-cpuprofile FILE] [-memprofile FILE]
//
// The first group regenerates the paper's evaluation; the second group
// runs the extension studies documented in EXPERIMENTS.md. -obs runs an
// instrumented reference execution (C1.5 on the paper's machine) and
// writes its Chrome/Perfetto trace alongside the tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"

	"ensemblekit/internal/campaign"
	"ensemblekit/internal/cluster"
	"ensemblekit/internal/experiments"
	"ensemblekit/internal/obs"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/report"
	"ensemblekit/internal/runtime"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment to run (all, table1, table2, table4, fig3..fig9, headline)")
		trials     = flag.Int("trials", 5, "trials to average (the paper uses 5)")
		steps      = flag.Int("steps", 0, "in situ steps (0 = the paper's 37)")
		jitter     = flag.Float64("jitter", 0.02, "stage-time noise amplitude (negative disables)")
		seed       = flag.Int64("seed", 1, "base RNG seed")
		quick      = flag.Bool("quick", false, "fast mode: 1 trial, 8 steps, no jitter")
		csvDir     = flag.String("csv", "", "also write each table as CSV into this directory")
		obsOut     = flag.String("obs", "", "write a Chrome trace of an instrumented reference run (C1.5) to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		workers    = flag.Int("workers", 0, "evaluate through a campaign service with N workers (0 = serial)")
	)
	flag.Parse()

	cfg := experiments.Config{
		Trials:   *trials,
		Steps:    *steps,
		Jitter:   *jitter,
		BaseSeed: *seed,
	}.Defaults()
	if *quick {
		cfg = experiments.Quick()
	}
	if *workers > 0 {
		svc, err := campaign.NewService(campaign.Config{Workers: *workers})
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer svc.Close()
		cfg.Service = svc
	}

	if err := realMain(cfg, strings.ToLower(*exp), *csvDir, *obsOut, *cpuProfile, *memProfile); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func realMain(cfg experiments.Config, exp, csvDir, obsOut, cpuProfile, memProfile string) error {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if memProfile != "" {
		defer func() {
			f, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: heap profile: %v\n", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: heap profile: %v\n", err)
			}
		}()
	}
	if err := run(cfg, exp, csvDir); err != nil {
		return err
	}
	if obsOut != "" {
		return writeReferenceObs(cfg, obsOut)
	}
	return nil
}

// writeReferenceObs runs C1.5 (the paper's winning configuration) with the
// instrumentation bus attached and exports the Chrome trace. The harness's
// own experiment runs stay uninstrumented: each spawns its own simulation
// environment, and a shared recorder would interleave their clocks.
func writeReferenceObs(cfg experiments.Config, path string) error {
	p := placement.C15()
	spec := cluster.Cori(3)
	es := runtime.SpecForPlacement(p, cfg.Steps)
	rec := obs.NewRecorder(nil)
	if _, err := runtime.RunSimulated(spec, p, es, runtime.SimOptions{
		Jitter: cfg.Jitter, Seed: cfg.BaseSeed, Recorder: rec,
	}); err != nil {
		return fmt.Errorf("reference obs run: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := obs.WriteChromeTrace(f, rec.Events()); err != nil {
		return err
	}
	fmt.Printf("reference C1.5 chrome trace written to %s (open in ui.perfetto.dev)\n", path)
	return nil
}

func run(cfg experiments.Config, exp, csvDir string) error {
	selected := func(name string) bool { return exp == "all" || exp == name }
	emit := func(name string, t *report.Table) error {
		fmt.Println(t.String())
		if csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(csvDir, name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return t.WriteCSV(f)
	}

	any := false
	if selected("table1") {
		any = true
		out, err := experiments.Table1(cfg)
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if selected("table2") {
		any = true
		if err := emit("table2", experiments.Table2()); err != nil {
			return err
		}
	}
	if selected("table4") {
		any = true
		if err := emit("table4", experiments.Table4()); err != nil {
			return err
		}
	}
	if selected("fig3") {
		any = true
		rows, err := experiments.Fig3(cfg)
		if err != nil {
			return err
		}
		if err := emit("fig3", experiments.Fig3Table(rows)); err != nil {
			return err
		}
	}
	if selected("fig4") {
		any = true
		rows, err := experiments.Fig4(cfg)
		if err != nil {
			return err
		}
		if err := emit("fig4", experiments.Fig4Table(rows)); err != nil {
			return err
		}
	}
	if selected("fig5") {
		any = true
		rows, err := experiments.Fig5(cfg)
		if err != nil {
			return err
		}
		if err := emit("fig5", experiments.Fig5Table(rows)); err != nil {
			return err
		}
	}
	if selected("fig6") {
		any = true
		out, err := experiments.Fig6(cfg)
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if selected("fig7") {
		any = true
		points, err := experiments.Fig7(cfg)
		if err != nil {
			return err
		}
		if err := emit("fig7", experiments.Fig7Table(points)); err != nil {
			return err
		}
	}
	if selected("fig8") {
		any = true
		rows, _, err := experiments.Fig8(cfg)
		if err != nil {
			return err
		}
		if err := emit("fig8", experiments.IndicatorTable(
			"Figure 8 — F(P_i) per indicator stage, one analysis per simulation", rows)); err != nil {
			return err
		}
		fmt.Println(experiments.IndicatorChart("Figure 8 (right panel) — F(P^{U,A,P})", rows).String())
	}
	if selected("fig9") {
		any = true
		rows, _, err := experiments.Fig9(cfg)
		if err != nil {
			return err
		}
		if err := emit("fig9", experiments.IndicatorTable(
			"Figure 9 — F(P_i) per indicator stage, two analyses per simulation", rows)); err != nil {
			return err
		}
		fmt.Println(experiments.IndicatorChart("Figure 9 (right panel) — F(P^{U,A,P})", rows).String())
	}
	if selected("headline") {
		any = true
		res, err := experiments.Headline(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.String())
		fmt.Println()
	}
	if selected("tiers") {
		any = true
		rows, err := experiments.TierStudy(cfg)
		if err != nil {
			return err
		}
		if err := emit("tiers", experiments.TierTable(rows)); err != nil {
			return err
		}
	}
	if selected("validation") {
		any = true
		rows, err := experiments.ModelValidation(cfg)
		if err != nil {
			return err
		}
		if err := emit("validation", experiments.ValidationTable(rows)); err != nil {
			return err
		}
	}
	if selected("buffers") {
		any = true
		rows, err := experiments.BufferStudy(cfg)
		if err != nil {
			return err
		}
		if err := emit("buffers", experiments.BufferTable(rows)); err != nil {
			return err
		}
	}
	if selected("aggregators") {
		any = true
		rows, err := experiments.AggregatorStudy(cfg)
		if err != nil {
			return err
		}
		if err := emit("aggregators", experiments.AggregatorTable(rows)); err != nil {
			return err
		}
	}
	if selected("scaling") {
		any = true
		rows, err := experiments.ScalingStudy(cfg)
		if err != nil {
			return err
		}
		if err := emit("scaling", experiments.ScalingTable(rows)); err != nil {
			return err
		}
	}
	if selected("heterogeneous") {
		any = true
		rows, err := experiments.HeterogeneousStudy(cfg)
		if err != nil {
			return err
		}
		if err := emit("heterogeneous", experiments.HeterogeneousTable(rows)); err != nil {
			return err
		}
	}
	if selected("topology") {
		any = true
		rows, err := experiments.TopologyStudy(cfg)
		if err != nil {
			return err
		}
		if err := emit("topology", experiments.TopologyTable(rows)); err != nil {
			return err
		}
	}
	if selected("sockets") {
		any = true
		rows, err := experiments.SocketStudy(cfg)
		if err != nil {
			return err
		}
		if err := emit("sockets", experiments.SocketTable(rows)); err != nil {
			return err
		}
	}
	if selected("faults") {
		any = true
		rows, err := experiments.FaultStudy(cfg)
		if err != nil {
			return err
		}
		if err := emit("faults", experiments.FaultTable(rows)); err != nil {
			return err
		}
	}
	if selected("intransit") {
		any = true
		rows, err := experiments.InTransitStudy(cfg)
		if err != nil {
			return err
		}
		if err := emit("intransit", experiments.InTransitTable(rows)); err != nil {
			return err
		}
	}
	if !any {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
