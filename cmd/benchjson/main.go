// Command benchjson converts `go test -bench` output into a JSON snapshot
// suitable for committing alongside the code (see `make bench-json`) and
// for diffing across revisions by machine. It reads the benchmark text
// from stdin and aggregates repeated runs of the same benchmark
// (`-count N`) into per-metric means, keeping the run count so consumers
// can judge stability.
//
// Usage:
//
//	go test -bench=. -benchmem . | go run ./cmd/benchjson -o BENCH_2026-08-06.json
//
// With no -o flag the JSON is written to stdout.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Snapshot is the top-level JSON document.
type Snapshot struct {
	// Context lines from the benchmark header (goos, goarch, pkg, cpu).
	Context map[string]string `json:"context,omitempty"`
	// Benchmarks, in first-appearance order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one aggregated benchmark result.
type Benchmark struct {
	Name string `json:"name"`
	// Runs is how many result lines were aggregated (the -count value).
	Runs int `json:"runs"`
	// Iterations is the mean b.N across runs.
	Iterations float64 `json:"iterations"`
	// Metrics maps a unit (ns/op, B/op, allocs/op, custom b.ReportMetric
	// units) to its mean value across runs.
	Metrics map[string]float64 `json:"metrics"`
}

// parse consumes `go test -bench` text and returns the aggregated
// snapshot. Unrecognized lines (PASS, ok, test logs) are skipped.
func parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Context: map[string]string{}}
	index := map[string]int{} // name -> position in snap.Benchmarks
	sums := map[string]map[string]float64{}
	iters := map[string]float64{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if k, v, ok := contextLine(line); ok {
			snap.Context[k] = v
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is: Name N value unit [value unit]...
		if len(fields) < 4 || (len(fields)-2)%2 != 0 {
			continue
		}
		n, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if _, seen := index[name]; !seen {
			index[name] = len(snap.Benchmarks)
			snap.Benchmarks = append(snap.Benchmarks, Benchmark{Name: name})
			sums[name] = map[string]float64{}
		}
		b := &snap.Benchmarks[index[name]]
		b.Runs++
		iters[name] += n
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in line %q", fields[i], line)
			}
			sums[name][fields[i+1]] += v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := range snap.Benchmarks {
		b := &snap.Benchmarks[i]
		b.Iterations = iters[b.Name] / float64(b.Runs)
		b.Metrics = map[string]float64{}
		for unit, sum := range sums[b.Name] {
			b.Metrics[unit] = sum / float64(b.Runs)
		}
	}
	return snap, nil
}

// contextLine recognizes the "key: value" header lines go test prints
// before the results.
func contextLine(line string) (key, value string, ok bool) {
	for _, k := range []string{"goos", "goarch", "pkg", "cpu"} {
		if strings.HasPrefix(line, k+":") {
			return k, strings.TrimSpace(line[len(k)+1:]), true
		}
	}
	return "", "", false
}

// render marshals the snapshot with stable formatting (sorted metric keys
// come free with encoding/json's map ordering).
func render(snap *Snapshot) ([]byte, error) {
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

func main() {
	outPath := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	snap, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	out, err := render(snap)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *outPath == "" {
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(*outPath, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", *outPath, len(snap.Benchmarks))
}
