package main

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: ensemblekit
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDESEngine        	     422	   2748441 ns/op	    5296 B/op	      74 allocs/op
BenchmarkDESEngine        	     400	   2751559 ns/op	    5296 B/op	      74 allocs/op
BenchmarkLargeEnsembleDES 	     907	   1441953 ns/op	       395.3 makespan-s	  360726 B/op	     905 allocs/op
BenchmarkCampaignSweep/pooled-4w-warm 	      66	  17000000 ns/op
some unrelated log line
PASS
ok  	ensemblekit	13.983s
`

func TestParseAggregatesRuns(t *testing.T) {
	snap, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Context["goos"]; got != "linux" {
		t.Errorf("goos = %q, want linux", got)
	}
	if got := snap.Context["cpu"]; !strings.Contains(got, "Xeon") {
		t.Errorf("cpu = %q, want Xeon model string", got)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(snap.Benchmarks))
	}

	des := snap.Benchmarks[0]
	if des.Name != "BenchmarkDESEngine" || des.Runs != 2 {
		t.Fatalf("first benchmark = %q runs=%d, want BenchmarkDESEngine runs=2", des.Name, des.Runs)
	}
	if want := (2748441.0 + 2751559.0) / 2; math.Abs(des.Metrics["ns/op"]-want) > 1e-6 {
		t.Errorf("DESEngine ns/op = %v, want mean %v", des.Metrics["ns/op"], want)
	}
	if math.Abs(des.Iterations-411) > 1e-9 {
		t.Errorf("DESEngine iterations = %v, want 411", des.Iterations)
	}

	large := snap.Benchmarks[1]
	if large.Metrics["makespan-s"] != 395.3 {
		t.Errorf("custom metric makespan-s = %v, want 395.3", large.Metrics["makespan-s"])
	}
	if large.Metrics["allocs/op"] != 905 {
		t.Errorf("allocs/op = %v, want 905", large.Metrics["allocs/op"])
	}

	sub := snap.Benchmarks[2]
	if sub.Name != "BenchmarkCampaignSweep/pooled-4w-warm" || sub.Runs != 1 {
		t.Errorf("sub-benchmark = %q runs=%d, want BenchmarkCampaignSweep/pooled-4w-warm runs=1", sub.Name, sub.Runs)
	}
}

func TestParseRejectsNothing(t *testing.T) {
	snap, err := parse(strings.NewReader("PASS\nok  \tensemblekit\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 0 {
		t.Fatalf("got %d benchmarks from benchmark-free input, want 0", len(snap.Benchmarks))
	}
}

func TestRenderRoundTrips(t *testing.T) {
	snap, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	out, err := render(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatalf("rendered JSON does not parse: %v", err)
	}
	if len(back.Benchmarks) != len(snap.Benchmarks) {
		t.Errorf("round-trip lost benchmarks: %d != %d", len(back.Benchmarks), len(snap.Benchmarks))
	}
}
