// Command ensembled serves the campaign service over HTTP: a bounded
// worker pool evaluating ensemble placements with a content-addressed
// result cache, exposed as a JSON API with Prometheus metrics, live
// server-sent-events campaign streams, structured JSON logs, and
// (opt-in) pprof profiling.
//
// Usage:
//
//	ensembled [-addr :8080] [-workers N] [-queue N]
//	          [-cache-bytes N] [-cache-dir DIR]
//	          [-state-dir DIR] [-retry N] [-exec-delay DUR]
//	          [-node-id ID] [-advertise URL] [-join URL,URL] [-heartbeat DUR]
//	          [-log-level info] [-pprof] [-no-trace]
//	          [-trace-traces N] [-trace-spans N]
//	          [-smoke] [-smoke-chaos] [-smoke-pool] [-artifacts-dir DIR]
//
// With -state-dir the service is crash-safe: every campaign, job
// enqueue, and terminal job state is fsync'd to an append-only journal
// (DIR/journal.wal) before it is acknowledged, and results persist in a
// checksummed disk cache (DIR/cache unless -cache-dir overrides it). On
// startup the journal is replayed: finished jobs resolve from the cache,
// unfinished ones re-enter the queue, and open campaigns relaunch under
// their original IDs — a SIGKILL'd service resumes exactly where it
// stopped. -retry bounds executions per job (transient failures back off
// and re-enqueue; default 3; 1 disables retries).
//
// Endpoints:
//
//	POST /v1/campaigns               submit a sweep ({"configs":["table2"]})
//	GET  /v1/campaigns               list campaigns
//	GET  /v1/campaigns/{id}          poll a campaign (F(P) ranking once done)
//	GET  /v1/campaigns/{id}/events   live SSE stream: one event per job state
//	                                 transition plus a terminal summary
//	GET  /v1/jobs/{id}               one job's status (incl. trace ID, reason)
//	GET  /v1/jobs/{id}/trace         Perfetto (Chrome JSON) trace of a done job
//	GET  /v1/jobs/{id}/spans         distributed-trace spans (OTLP JSON)
//	GET  /v1/jobs/{id}/critical-path per-job critical path with stage breakdown
//	GET  /v1/stats                   cache hit rate, queue depth, worker counters
//	GET  /healthz                    liveness (200 while the process serves)
//	GET  /readyz                     readiness (503 when draining/saturated/journal unwritable)
//	GET  /metrics                    Prometheus text exposition (service + obs)
//	GET  /debug/pprof/*              runtime profiles (only with -pprof)
//
// Distributed tracing is on by default (-no-trace disables it): every
// request gets a server span, campaigns and jobs become child spans, and
// each job's DES run is bridged in as stage-level spans, queryable via
// the /spans and /critical-path endpoints or correlated with logs via
// trace_id.
//
// -smoke starts the server on a loopback listener, POSTs the paper's
// Table 2 campaign to it twice (cold then warm cache), scrapes /metrics,
// checks /healthz and /readyz, consumes one SSE stream end to end,
// verifies the distributed trace of a job (span depth and critical-path
// accounting), prints the ranking and the cache stats, and exits — the
// self-test behind `make serve`. With -artifacts-dir the smoke test
// writes the fetched spans and critical path there as JSON files (CI
// uploads them as artifacts).
//
// -smoke-chaos is the crash-recovery self-test: it re-executes this
// binary as a server with a state dir and slowed executions, POSTs a
// Table 2 campaign, kills the server with SIGKILL mid-flight, restarts
// it against the same state dir, waits for the resumed campaign to
// finish, and asserts its result fingerprint is identical to an
// uninterrupted in-process run of the same sweep.
//
// Any of -node-id, -advertise, or -join enables the distributed
// campaign fabric: the process joins (or seeds) a peer pool that routes
// every job by its content hash to a deterministic owner, consults the
// owner's cache before executing, and forwards execution when the hash
// belongs elsewhere, so N ensembled processes serve one logical
// campaign service with one fleet-wide cache. -node-id and -advertise
// default to the bound listen address; -join lists seed peer base URLs.
// The pool mounts under /v1/pool/ and exports pool_* metrics; /readyz
// stays 503 until a joining node reaches a seed. On SIGTERM a pool
// member forwards its still-queued jobs to ring successors before
// exiting instead of journaling them for a local restart.
//
// -smoke-pool is the fabric self-test: it launches three ensembled
// processes as one localhost pool, runs a campaign against node 1 while
// SIGKILLing node 3 mid-flight, asserts the fingerprint still matches
// an uninterrupted in-process run, then re-submits the sweep on node 2
// and asserts the fleet cache tier answered across nodes (pool metric
// pool_cache_hits_total > 0, pool_forwards_total > 0).
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ensemblekit/internal/campaign"
	"ensemblekit/internal/campaign/accounting"
	"ensemblekit/internal/campaign/pool"
	"ensemblekit/internal/obs"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/telemetry"
	"ensemblekit/internal/telemetry/tracing"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "job queue depth (0 = default 256)")
		cacheBytes  = flag.Int64("cache-bytes", 0, "in-memory result-cache budget (0 = default 256 MiB)")
		cacheDir    = flag.String("cache-dir", "", "optional on-disk result cache directory")
		stateDir    = flag.String("state-dir", "", "durable state directory: journal (DIR/journal.wal) + default disk cache (DIR/cache)")
		retry       = flag.Int("retry", 3, "max executions per job; transient failures back off and re-enqueue (1 disables retries)")
		execDelay   = flag.Duration("exec-delay", 0, "artificially stretch each execution (chaos/load testing only)")
		memberPar   = flag.Int("member-parallelism", 0, "simulate eligible jobs' independent members on up to this many cores each (0 = joint path; results are bit-identical)")
		fastPath    = flag.Bool("fastpath", false, "answer fault-free steady-state-eligible jobs from the Eq. 1-9 closed forms instead of the DES (bit-identical)")
		verifyFP    = flag.Bool("verify-fastpath", false, "cross-check every fast-path hit against a DES re-run (implies -fastpath; validation mode)")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
		pprofOn     = flag.Bool("pprof", false, "expose GET /debug/pprof/* runtime profiles")
		noTrace     = flag.Bool("no-trace", false, "disable distributed tracing")
		traceTraces = flag.Int("trace-traces", 0, "max retained traces (0 = default 1024)")
		traceSpans  = flag.Int("trace-spans", 0, "max retained spans per trace (0 = default 8192)")
		nodeID      = flag.String("node-id", "", "pool identity of this node (enables the fabric; default: the bound listen address)")
		advertise   = flag.String("advertise", "", "base URL peers reach this node at (enables the fabric; default: http://<bound address>)")
		join        = flag.String("join", "", "comma-separated seed peer base URLs to join (enables the fabric)")
		heartbeat   = flag.Duration("heartbeat", 0, "pool heartbeat interval (0 = default 1s)")
		smoke       = flag.Bool("smoke", false, "run the Table 2 self-test against a loopback server and exit")
		smokeChaos  = flag.Bool("smoke-chaos", false, "run the kill -9 / resume self-test and exit")
		smokePool   = flag.Bool("smoke-pool", false, "run the 3-node pool self-test and exit")
		artifacts   = flag.String("artifacts-dir", "", "smoke only: write fetched spans and critical path here")
		addrFile    = flag.String("addr-file", "", "write the bound listen address to this file (used by the chaos harness)")
	)
	flag.Parse()
	cfg := serverConfig{
		addr: *addr, workers: *workers, queue: *queue,
		cacheBytes: *cacheBytes, cacheDir: *cacheDir, logLevel: *logLevel,
		stateDir: *stateDir, retry: *retry, execDelay: *execDelay,
		memberPar: *memberPar, fastPath: *fastPath, verifyFP: *verifyFP,
		nodeID: *nodeID, advertise: *advertise, join: *join, heartbeat: *heartbeat,
		pprofOn: *pprofOn, noTrace: *noTrace,
		traceTraces: *traceTraces, traceSpans: *traceSpans,
		smoke: *smoke, smokeChaos: *smokeChaos, smokePool: *smokePool,
		artifactsDir: *artifacts,
		addrFile:     *addrFile,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ensembled: %v\n", err)
		os.Exit(1)
	}
}

// serverConfig carries the parsed flags.
type serverConfig struct {
	addr               string
	workers, queue     int
	cacheBytes         int64
	cacheDir, logLevel string
	stateDir           string
	retry              int
	execDelay          time.Duration
	memberPar          int
	fastPath, verifyFP bool
	nodeID             string
	advertise          string
	join               string
	heartbeat          time.Duration
	pprofOn, noTrace   bool
	traceTraces        int
	traceSpans         int
	smoke, smokeChaos  bool
	smokePool          bool
	artifactsDir       string
	addrFile           string
}

// poolEnabled reports whether any fabric flag was given.
func (c serverConfig) poolEnabled() bool {
	return c.nodeID != "" || c.advertise != "" || c.join != ""
}

func run(cfg serverConfig) error {
	if cfg.smokeChaos {
		return smokeChaos(cfg.stateDir)
	}
	if cfg.smokePool {
		return smokePool(cfg.stateDir)
	}
	level, ok := telemetry.ParseLevel(cfg.logLevel)
	if !ok {
		return fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", cfg.logLevel)
	}
	log := telemetry.NewLogger(os.Stderr, level)
	reg := telemetry.NewRegistry()

	// -state-dir bundles durability: the journal plus (unless overridden)
	// a disk cache, so replayed jobs resolve without re-executing.
	journalPath := ""
	if cfg.stateDir != "" {
		if err := os.MkdirAll(cfg.stateDir, 0o755); err != nil {
			return fmt.Errorf("state dir: %w", err)
		}
		journalPath = filepath.Join(cfg.stateDir, "journal.wal")
		if cfg.cacheDir == "" {
			cfg.cacheDir = filepath.Join(cfg.stateDir, "cache")
		}
	}

	// The obs recorder keeps the service's counters as a virtual-time
	// event log; the sink bridges the same emissions into the Prometheus
	// registry so one scrape covers both telemetry tiers.
	start := time.Now()
	rec := obs.NewRecorder(func() float64 { return time.Since(start).Seconds() })
	rec.SetSink(telemetry.NewObsSink(reg))

	var tracer *tracing.Tracer
	if !cfg.noTrace {
		tracer = tracing.NewTracer(tracing.NewStore(cfg.traceTraces, cfg.traceSpans))
	}

	svc, err := campaign.NewService(campaign.Config{
		Workers:     cfg.workers,
		QueueDepth:  cfg.queue,
		CacheBytes:  cfg.cacheBytes,
		CacheDir:    cfg.cacheDir,
		JournalPath: journalPath,
		Retry:       campaign.RetryPolicy{MaxAttempts: cfg.retry},
		ExecDelay:   cfg.execDelay,

		MemberParallelism: cfg.memberPar,
		FastPath:          cfg.fastPath,
		VerifyFastPath:    cfg.verifyFP,

		Recorder: rec,
		Metrics:  reg,
		Logger:   log,
		Tracer:   tracer,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	api := campaign.NewServer(svc)

	addr := cfg.addr
	if cfg.smoke {
		addr = "127.0.0.1:0" // the self-test picks its own port
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}

	// The fabric is wired before Resume so journal-replayed jobs route
	// through the ring from their first execution. -node-id and
	// -advertise default to the bound address, so a bare -join suffices
	// on localhost.
	var pl *pool.Pool
	if cfg.poolEnabled() {
		selfID := cfg.nodeID
		if selfID == "" {
			selfID = ln.Addr().String()
		}
		adv := cfg.advertise
		if adv == "" {
			adv = "http://" + ln.Addr().String()
		}
		var seeds []string
		for _, s := range strings.Split(cfg.join, ",") {
			if s = strings.TrimSpace(s); s != "" {
				seeds = append(seeds, s)
			}
		}
		pl, err = pool.New(pool.Config{
			SelfID:    selfID,
			Advertise: adv,
			Join:      seeds,
			Heartbeat: cfg.heartbeat,
			Local:     svc,
			Permanent: campaign.IsPermanent,
			Metrics:   reg,
			Logger:    log,
			Tracer:    tracer,
		})
		if err != nil {
			return err
		}
		defer pl.Close()
		svc.SetFabric(pl)
		api.AddReadyCheck(pl.Ready)
		log.Info("pool fabric enabled", "node", selfID, "advertise", adv, "seeds", len(seeds))
	}

	api.Resume() // relaunch campaigns left open in the journal

	mux := http.NewServeMux()
	mux.Handle("/v1/", api.Handler())
	mux.Handle("GET /healthz", api.Handler())
	mux.Handle("GET /readyz", api.Handler())
	mux.Handle("GET /metrics", reg.Handler())
	if pl != nil {
		mux.Handle("/v1/pool/", pl.Handler())
		pl.Start() // heartbeats + seed joins (retried until first contact)
	}
	if cfg.pprofOn {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}

	srv := &http.Server{Handler: mux}
	if cfg.addrFile != "" {
		// Tmp-then-rename so a watcher never reads a half-written address.
		tmp := cfg.addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, cfg.addrFile); err != nil {
			return err
		}
	}

	if cfg.smoke {
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		return smokeTest("http://"+ln.Addr().String(), tracer != nil, cfg.artifactsDir)
	}

	log.Info("ensembled listening",
		"addr", ln.Addr().String(), "workers", svc.Stats().Workers,
		"queue", svc.Stats().QueueCapacity, "pprof", cfg.pprofOn,
		"tracing", tracer != nil, "pool", pl != nil)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Info("shutting down")
		api.SetDraining(true) // readiness fails first, so LBs stop routing
		if pl != nil {
			// Graceful drain: still-queued jobs move to ring successors
			// now instead of waiting in the journal for a local restart.
			drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			handed := svc.DrainQueuedToPeers(drainCtx)
			cancel()
			if handed > 0 {
				log.Info("drained queued jobs to peers", "jobs", handed)
			}
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// smokeTest drives the HTTP API end to end: it submits the paper's
// Table 2 campaign twice (verifying the second run is answered entirely
// from the cache), scrapes /metrics, consumes one SSE event stream
// through its terminal summary, and — when tracing is on — verifies a
// job's distributed trace (span-tree depth, critical-path accounting),
// writing the fetched payloads to artifactsDir when set.
func smokeTest(base string, traced bool, artifactsDir string) error {
	ranking, err := runTable2(base)
	if err != nil {
		return err
	}
	fmt.Println("Table 2 campaign ranking (F at P^{U,A,P}):")
	for i, r := range ranking {
		fmt.Printf("  %d. %-5s %.4f\n", i+1, r.Name, r.Value)
	}

	// Second submission: every job's hash is now cached.
	if _, err := runTable2(base); err != nil {
		return fmt.Errorf("warm re-run: %w", err)
	}
	var stats struct {
		campaign.Stats
		HitRate float64 `json:"hitRate"`
	}
	if err := getJSON(base+"/v1/stats", &stats); err != nil {
		return err
	}
	fmt.Printf("cache: %d hits / %d misses (hit rate %.0f%%), %d jobs completed\n",
		stats.CacheHits, stats.CacheMisses, 100*stats.HitRate, stats.Completed)
	if stats.CacheHits == 0 {
		return errors.New("smoke: warm re-run produced no cache hits")
	}

	if err := smokeHealth(base); err != nil {
		return err
	}
	if err := smokeMetrics(base); err != nil {
		return err
	}
	if err := smokeSSE(base); err != nil {
		return err
	}
	if traced {
		if err := smokeTrace(base, artifactsDir); err != nil {
			return err
		}
	}
	fmt.Println("smoke test passed")
	return nil
}

// smokeTrace runs one fresh (uncached, so actually executed) job and
// verifies its distributed trace end to end: the span tree must reach
// at least 4 levels (request → campaign → job → execute → stage chain)
// and the critical-path segments must sum to the job's measured latency
// within 1%. With artifactsDir set, the OTLP spans and the critical
// path are written there for CI to upload.
func smokeTrace(base, artifactsDir string) error {
	// steps:6 differs from the Table 2 runs above, so the job misses the
	// cache and produces execute + DES spans.
	body, _ := json.Marshal(map[string]any{
		"name":    "trace-smoke",
		"configs": []string{"C1.5"},
		"steps":   6,
	})
	resp, err := http.Post(base+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var st campaign.CampaignStatus
	if err := decodeJSON(resp, &st); err != nil {
		return err
	}
	deadline := time.Now().Add(2 * time.Minute)
	for st.Status == "running" {
		if time.Now().After(deadline) {
			return fmt.Errorf("smoke: trace campaign %s timed out", st.ID)
		}
		time.Sleep(25 * time.Millisecond)
		if err := getJSON(base+"/v1/campaigns/"+st.ID, &st); err != nil {
			return err
		}
	}
	if st.Status != "done" {
		return fmt.Errorf("smoke: trace campaign %s: %s", st.ID, st.Error)
	}
	if len(st.Result.Candidates) == 0 || len(st.Result.Candidates[0].JobIDs) == 0 {
		return errors.New("smoke: trace campaign produced no jobs")
	}
	jobID := st.Result.Candidates[0].JobIDs[0]

	// The campaign span lands in the store asynchronously right after the
	// poll flips to done; retry briefly until the full chain is present.
	var spans []tracing.SpanData
	var rawSpans []byte
	depth := 0
	for {
		sr, err := http.Get(base + "/v1/jobs/" + jobID + "/spans")
		if err != nil {
			return err
		}
		rawSpans, err = io.ReadAll(sr.Body)
		sr.Body.Close()
		if err != nil {
			return err
		}
		if sr.StatusCode != http.StatusOK {
			return fmt.Errorf("smoke: GET /spans: HTTP %d: %s", sr.StatusCode, rawSpans)
		}
		spans, err = tracing.ReadOTLP(bytes.NewReader(rawSpans))
		if err != nil {
			return fmt.Errorf("smoke: decoding OTLP spans: %w", err)
		}
		depth = tracing.Depth(spans)
		if depth >= 4 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("smoke: span tree depth %d, want >= 4 (%d spans)", depth, len(spans))
		}
		time.Sleep(25 * time.Millisecond)
	}

	var cp tracing.CriticalPath
	cr, err := http.Get(base + "/v1/jobs/" + jobID + "/critical-path")
	if err != nil {
		return err
	}
	rawCP, err := io.ReadAll(cr.Body)
	cr.Body.Close()
	if err != nil {
		return err
	}
	if cr.StatusCode != http.StatusOK {
		return fmt.Errorf("smoke: GET /critical-path: HTTP %d: %s", cr.StatusCode, rawCP)
	}
	if err := json.Unmarshal(rawCP, &cp); err != nil {
		return fmt.Errorf("smoke: decoding critical path: %w", err)
	}
	sum := 0.0
	for _, seg := range cp.Segments {
		sum += seg.Sec
	}
	if cp.TotalSec <= 0 {
		return fmt.Errorf("smoke: degenerate critical path: total %.9fs", cp.TotalSec)
	}
	if diff := sum - cp.TotalSec; diff > 0.01*cp.TotalSec || diff < -0.01*cp.TotalSec {
		return fmt.Errorf("smoke: critical-path segments sum %.9fs vs job latency %.9fs (>1%% off)", sum, cp.TotalSec)
	}

	if artifactsDir != "" {
		if err := os.MkdirAll(artifactsDir, 0o755); err != nil {
			return err
		}
		for name, data := range map[string][]byte{
			jobID + "-spans.json":         rawSpans,
			jobID + "-critical-path.json": rawCP,
		} {
			if err := os.WriteFile(filepath.Join(artifactsDir, name), data, 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("trace artifacts written to %s\n", artifactsDir)
	}

	kinds := map[string]bool{}
	for _, d := range spans {
		kinds[d.Kind] = true
	}
	fmt.Printf("trace: job %s, %d spans, depth %d, critical path %.3fs across %d segments (top kind %s)\n",
		jobID, len(spans), depth, cp.TotalSec, len(cp.Segments), cp.ByKind[0].Kind)
	return nil
}

// smokeHealth checks liveness and readiness: both endpoints must answer
// 200 on a healthy, non-draining server.
func smokeHealth(base string) error {
	var health struct {
		Status  string   `json:"status"`
		Reasons []string `json:"reasons,omitempty"`
	}
	if err := getJSON(base+"/healthz", &health); err != nil {
		return fmt.Errorf("smoke: GET /healthz: %w", err)
	}
	if health.Status != "ok" {
		return fmt.Errorf("smoke: /healthz status %q, want ok", health.Status)
	}
	if err := getJSON(base+"/readyz", &health); err != nil {
		return fmt.Errorf("smoke: GET /readyz: %w", err)
	}
	if health.Status != "ready" {
		return fmt.Errorf("smoke: /readyz status %q (reasons %v), want ready",
			health.Status, health.Reasons)
	}
	fmt.Println("health: live and ready")
	return nil
}

// smokeMetrics scrapes /metrics and sanity-checks the exposition: the
// service and HTTP families must be present and every sample line must
// have the name{labels} value shape.
func smokeMetrics(base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("smoke: GET /metrics: HTTP %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	samples := 0
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, " ") {
			return fmt.Errorf("smoke: malformed metrics line %q", line)
		}
		samples++
	}
	for _, want := range []string{
		"campaign_cache_hits_total", "campaign_queue_depth",
		"campaign_execute_seconds_bucket", "http_requests_total",
		"obs_counter_total",
		"campaign_core_seconds_total", "campaign_core_seconds_saved_total",
	} {
		if !strings.Contains(string(body), want) {
			return fmt.Errorf("smoke: /metrics missing %s", want)
		}
	}
	fmt.Printf("metrics: %d samples scraped\n", samples)
	return nil
}

// smokeSSE submits a (fully cached) Table 2 campaign and consumes its SSE
// stream: one terminal event per job, then the summary.
func smokeSSE(base string) error {
	body, _ := json.Marshal(map[string]any{
		"name":    "table2-sse",
		"configs": []string{"table2"},
		"steps":   8,
	})
	resp, err := http.Post(base+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var st campaign.CampaignStatus
	if err := decodeJSON(resp, &st); err != nil {
		return err
	}

	stream, err := http.Get(base + "/v1/campaigns/" + st.ID + "/events")
	if err != nil {
		return err
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		return fmt.Errorf("smoke: SSE content type %q", ct)
	}

	jobEvents, terminal := 0, 0
	var summary campaign.CampaignSummary
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "job":
				var ev campaign.JobEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					return fmt.Errorf("smoke: SSE job event: %w", err)
				}
				jobEvents++
				if ev.Terminal() {
					terminal++
				}
			case "summary":
				if err := json.Unmarshal([]byte(data), &summary); err != nil {
					return fmt.Errorf("smoke: SSE summary event: %w", err)
				}
			case "error":
				return fmt.Errorf("smoke: SSE stream errored: %s", data)
			}
		}
		if summary.Campaign != "" {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if summary.Status != "done" {
		return fmt.Errorf("smoke: SSE summary status %q, want done", summary.Status)
	}
	if terminal != summary.Jobs {
		return fmt.Errorf("smoke: SSE delivered %d terminal events for %d jobs", terminal, summary.Jobs)
	}
	fmt.Printf("sse: %d job events (%d terminal), summary best=%s F=%.4f\n",
		jobEvents, terminal, summary.Best, summary.Objective)
	return nil
}

// runTable2 POSTs the Table 2 campaign and polls it to completion.
func runTable2(base string) ([]indicatorRanked, error) {
	body, _ := json.Marshal(map[string]any{
		"name":    "table2-smoke",
		"configs": []string{"table2"},
		"steps":   8,
	})
	resp, err := http.Post(base+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	var st campaign.CampaignStatus
	if err := decodeJSON(resp, &st); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if err := getJSON(base+"/v1/campaigns/"+st.ID, &st); err != nil {
			return nil, err
		}
		switch st.Status {
		case "done":
			out := make([]indicatorRanked, len(st.Result.Ranking))
			for i, r := range st.Result.Ranking {
				out[i] = indicatorRanked{Name: r.Name, Value: r.Value}
			}
			return out, nil
		case "failed":
			return nil, fmt.Errorf("campaign failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("campaign %s timed out (%d/%d jobs)", st.ID, st.Done, st.Total)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// indicatorRanked mirrors indicators.Ranked for JSON decoding.
type indicatorRanked struct {
	Name  string  `json:"Name"`
	Value float64 `json:"Value"`
}

// smokeChaos is the crash-recovery self-test behind -smoke-chaos: it
// proves a SIGKILL'd server resumes its campaign from the journal and
// produces results identical to a run that was never interrupted.
//
//  1. Run the chaos sweep uninterrupted, in process, and fingerprint it.
//  2. Re-exec this binary as a server with -state-dir and slowed
//     executions, POST the same sweep, and SIGKILL the server once the
//     campaign is mid-flight (some jobs done, some not).
//  3. Restart the server on the same state dir; the journal replay
//     re-enqueues the unfinished jobs, the disk cache answers the
//     finished ones, and Resume relaunches campaign c-1.
//  4. Wait for c-1 to finish and compare its result fingerprint (labels,
//     hashes, objectives, efficiencies, makespans, ranking) against the
//     uninterrupted run's.
func smokeChaos(stateDir string) error {
	if stateDir == "" {
		dir, err := os.MkdirTemp("", "ensembled-chaos-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		stateDir = dir
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}

	refFP, refJobs, _, err := chaosReference()
	if err != nil {
		return fmt.Errorf("chaos: uninterrupted reference run: %w", err)
	}
	fmt.Printf("chaos: reference fingerprint %s (%d jobs)\n", refFP[:16], refJobs)

	// First server: accept the campaign, then die hard mid-flight.
	base, child, err := startChaosChild(exe, stateDir)
	if err != nil {
		return err
	}
	defer func() {
		if child.Process != nil {
			_ = child.Process.Kill()
			_ = child.Wait()
		}
	}()
	body, _ := json.Marshal(chaosSweepRequest())
	resp, err := http.Post(base+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var st campaign.CampaignStatus
	if err := decodeJSON(resp, &st); err != nil {
		return err
	}
	if st.ID != "c-1" {
		return fmt.Errorf("chaos: campaign id %q, want c-1", st.ID)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if err := getJSON(base+"/v1/campaigns/"+st.ID, &st); err != nil {
			return err
		}
		if st.Done >= 1 && st.Done < st.Total {
			break
		}
		if st.Status != "running" || time.Now().After(deadline) {
			return fmt.Errorf("chaos: never caught campaign mid-flight (status %s, %d/%d jobs)",
				st.Status, st.Done, st.Total)
		}
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Printf("chaos: killing server at %d/%d jobs\n", st.Done, st.Total)
	if err := child.Process.Kill(); err != nil { // SIGKILL: no cleanup, no goodbye
		return err
	}
	_ = child.Wait()

	// Second server, same state dir: replay + resume.
	base2, child2, err := startChaosChild(exe, stateDir)
	if err != nil {
		return fmt.Errorf("chaos: restart: %w", err)
	}
	defer func() {
		_ = child2.Process.Kill()
		_ = child2.Wait()
	}()
	for {
		if err := getJSON(base2+"/v1/campaigns/c-1", &st); err != nil {
			return fmt.Errorf("chaos: polling resumed campaign: %w", err)
		}
		if st.Status != "running" {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: resumed campaign timed out (%d/%d jobs)", st.Done, st.Total)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Status != "done" {
		return fmt.Errorf("chaos: resumed campaign %s: %s", st.Status, st.Error)
	}
	gotFP, err := st.Result.Fingerprint()
	if err != nil {
		return err
	}
	if gotFP != refFP {
		return fmt.Errorf("chaos: resumed fingerprint %s != uninterrupted %s", gotFP, refFP)
	}
	var stats struct {
		campaign.Stats
		HitRate float64 `json:"hitRate"`
	}
	if err := getJSON(base2+"/v1/stats", &stats); err != nil {
		return err
	}
	if stats.JournalReplayed == 0 {
		return errors.New("chaos: restart replayed no jobs from the journal")
	}
	fmt.Printf("chaos: resumed campaign done, fingerprint matches (%d jobs replayed, %d cache hits)\n",
		stats.JournalReplayed, stats.CacheHits)
	fmt.Println("chaos smoke passed")
	return nil
}

// chaosSweepRequest is the sweep both the reference run and the chaos
// servers evaluate: the Table 2 configurations at a reduced step count.
func chaosSweepRequest() map[string]any {
	return map[string]any{
		"name":    "chaos",
		"configs": []string{"table2"},
		"steps":   8,
	}
}

// chaosReference evaluates the chaos sweep in process, uninterrupted,
// and returns its fingerprint — the ground truth the resumed campaign
// must reproduce — plus its resource-ledger snapshot, the accounting
// ground truth a distributed run of the same sweep must reconcile with.
func chaosReference() (string, int, accounting.Snapshot, error) {
	svc, err := campaign.NewService(campaign.Config{Workers: 2})
	if err != nil {
		return "", 0, accounting.Snapshot{}, err
	}
	defer svc.Close()
	res, err := campaign.RunCampaign(context.Background(), svc, campaign.Sweep{
		Name:       "chaos",
		Placements: placement.ConfigsTable2(),
		Steps:      8,
		Campaign:   "ref",
	})
	if err != nil {
		return "", 0, accounting.Snapshot{}, err
	}
	fp, err := res.Fingerprint()
	acct, _ := svc.CampaignAccounting("ref")
	return fp, res.Jobs, acct, err
}

// startChaosChild launches this binary as a chaos-harness server: two
// workers and slowed executions keep the campaign in flight long enough
// to kill it mid-run, and -addr-file publishes the ephemeral port. It
// returns once the child answers /healthz.
func startChaosChild(exe, stateDir string) (string, *exec.Cmd, error) {
	return startChild(exe, stateDir)
}

// startChild launches this binary as a harness server with the shared
// baseline flags (ephemeral loopback port, the given state dir, two
// workers, slowed executions) plus any extra flags, and returns the
// base URL once the child answers /healthz.
func startChild(exe, stateDir string, extra ...string) (string, *exec.Cmd, error) {
	addrFile := filepath.Join(stateDir, fmt.Sprintf("addr-%d.txt", time.Now().UnixNano()))
	args := []string{
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-state-dir", stateDir,
		"-workers", "2",
		"-exec-delay", "30ms",
		"-retry", "3",
		"-log-level", "warn",
	}
	args = append(args, extra...)
	cmd := exec.Command(exe, args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			base := "http://" + strings.TrimSpace(string(b))
			if r, err := http.Get(base + "/healthz"); err == nil {
				r.Body.Close()
				if r.StatusCode == http.StatusOK {
					return base, cmd, nil
				}
			}
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			return "", nil, errors.New("chaos: server never became healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// smokePool is the distributed-fabric self-test behind -smoke-pool: it
// proves three real processes serve one logical campaign service.
//
//  1. Run the chaos sweep uninterrupted, in process, and fingerprint it.
//  2. Launch three ensembled processes as a localhost pool (n2 and n3
//     join n1) and wait until every node sees three alive peers.
//  3. POST the sweep to n1 and SIGKILL n3 once the campaign is
//     mid-flight: its jobs re-route to the survivors and the finished
//     campaign's fingerprint must equal the uninterrupted reference.
//  4. Re-submit the same sweep on n2: results cached across the
//     survivors answer through the fleet cache tier, and the pool
//     metrics must show cross-node cache hits and forwards.
func smokePool(stateDir string) error {
	if stateDir == "" {
		dir, err := os.MkdirTemp("", "ensembled-pool-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		stateDir = dir
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}

	refFP, refJobs, refAcct, err := chaosReference()
	if err != nil {
		return fmt.Errorf("pool: uninterrupted reference run: %w", err)
	}
	fmt.Printf("pool: reference fingerprint %s (%d jobs)\n", refFP[:16], refJobs)

	type poolNode struct {
		id   string
		base string
		cmd  *exec.Cmd
	}
	var nodes []*poolNode
	defer func() {
		for _, n := range nodes {
			if n.cmd.Process != nil {
				_ = n.cmd.Process.Kill()
				_ = n.cmd.Wait()
			}
		}
	}()
	for i := 1; i <= 3; i++ {
		id := fmt.Sprintf("n%d", i)
		dir := filepath.Join(stateDir, id)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		extra := []string{"-node-id", id, "-heartbeat", "100ms"}
		if len(nodes) > 0 {
			extra = append(extra, "-join", nodes[0].base)
		}
		base, cmd, err := startChild(exe, dir, extra...)
		if err != nil {
			return fmt.Errorf("pool: starting %s: %w", id, err)
		}
		nodes = append(nodes, &poolNode{id: id, base: base, cmd: cmd})
	}

	deadline := time.Now().Add(30 * time.Second)
	for _, n := range nodes {
		for {
			if poolAlivePeers(n.base) == len(nodes) && isReady(n.base) {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("pool: %s never converged on %d alive peers", n.id, len(nodes))
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	fmt.Println("pool: 3 nodes converged, all ready")

	// Cold campaign on n1, with n3 SIGKILLed mid-flight.
	body, _ := json.Marshal(chaosSweepRequest())
	resp, err := http.Post(nodes[0].base+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var st campaign.CampaignStatus
	if err := decodeJSON(resp, &st); err != nil {
		return err
	}
	for {
		if err := getJSON(nodes[0].base+"/v1/campaigns/"+st.ID, &st); err != nil {
			return err
		}
		if st.Done >= 1 && st.Done < st.Total {
			break
		}
		if st.Status != "running" || time.Now().After(deadline) {
			return fmt.Errorf("pool: never caught campaign mid-flight (status %s, %d/%d jobs)",
				st.Status, st.Done, st.Total)
		}
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Printf("pool: SIGKILLing n3 at %d/%d jobs\n", st.Done, st.Total)
	if err := nodes[2].cmd.Process.Kill(); err != nil {
		return err
	}
	_ = nodes[2].cmd.Wait()

	deadline = time.Now().Add(2 * time.Minute)
	for st.Status == "running" {
		if time.Now().After(deadline) {
			return fmt.Errorf("pool: campaign timed out after peer loss (%d/%d jobs)", st.Done, st.Total)
		}
		time.Sleep(25 * time.Millisecond)
		if err := getJSON(nodes[0].base+"/v1/campaigns/"+st.ID, &st); err != nil {
			return err
		}
	}
	if st.Status != "done" {
		return fmt.Errorf("pool: campaign %s after peer loss: %s", st.Status, st.Error)
	}
	fp, err := st.Result.Fingerprint()
	if err != nil {
		return err
	}
	if fp != refFP {
		return fmt.Errorf("pool: fingerprint after peer loss %s != reference %s", fp, refFP)
	}
	fmt.Println("pool: campaign survived peer SIGKILL, fingerprint matches")

	// Warm re-submission on n2: jobs owned by n1 answer from its cache
	// through the fleet tier.
	resp, err = http.Post(nodes[1].base+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var st2 campaign.CampaignStatus
	if err := decodeJSON(resp, &st2); err != nil {
		return err
	}
	for st2.Status == "running" {
		if time.Now().After(deadline) {
			return fmt.Errorf("pool: warm campaign timed out (%d/%d jobs)", st2.Done, st2.Total)
		}
		time.Sleep(25 * time.Millisecond)
		if err := getJSON(nodes[1].base+"/v1/campaigns/"+st2.ID, &st2); err != nil {
			return err
		}
	}
	if st2.Status != "done" {
		return fmt.Errorf("pool: warm campaign %s: %s", st2.Status, st2.Error)
	}
	fp2, err := st2.Result.Fingerprint()
	if err != nil {
		return err
	}
	if fp2 != refFP {
		return fmt.Errorf("pool: warm fingerprint %s != reference %s", fp2, refFP)
	}

	// Job statuses expose the executing node.
	withNode := 0
	for _, c := range st2.Result.Candidates {
		for _, id := range c.JobIDs {
			var js struct {
				Node string `json:"node"`
			}
			if err := getJSON(nodes[1].base+"/v1/jobs/"+id, &js); err != nil {
				return err
			}
			if js.Node != "" {
				withNode++
			}
		}
	}
	if withNode == 0 {
		return errors.New("pool: no job status reported an executing node")
	}

	// The pool metrics on the survivors must show the fabric actually
	// carried work: forwarded executions and cross-node cache hits.
	var hits, forwards float64
	for _, n := range nodes[:2] {
		b, err := httpGetBody(n.base + "/metrics")
		if err != nil {
			return err
		}
		hits += metricSum(b, "pool_cache_hits_total")
		forwards += metricSum(b, "pool_forwards_total")
	}
	if forwards == 0 {
		return errors.New("pool: pool_forwards_total is 0; no execution was forwarded")
	}
	if hits == 0 {
		return errors.New("pool: pool_cache_hits_total is 0; no cross-node cache hit")
	}
	fmt.Printf("pool: %d cross-node cache hits, %d forwarded executions, %d jobs report their node\n",
		int(hits), int(forwards), withNode)

	// Federated metrics: every live node's samples carry its node label,
	// and the SIGKILLed n3 surfaces as federation errors, not samples.
	fedBody, err := httpGetBody(nodes[0].base + "/v1/pool/metrics")
	if err != nil {
		return err
	}
	for _, n := range nodes[:2] {
		if !strings.Contains(fedBody, `node="`+n.id+`"`) {
			return fmt.Errorf("pool: federated metrics missing node=%q samples", n.id)
		}
	}
	if metricSum(fedBody, "pool_federation_errors_total") == 0 {
		return errors.New("pool: dead n3 not counted on pool_federation_errors_total")
	}
	for _, fam := range []string{"campaign_core_seconds_total", "campaign_core_seconds_saved_total"} {
		if !strings.Contains(fedBody, fam) {
			return fmt.Errorf("pool: federated metrics missing %s", fam)
		}
	}
	fmt.Println("pool: federated metrics carry per-node labels, dead peer counted")

	// Fleet accounting: the rollup must equal the sum of the per-node
	// ledgers it reports.
	var fleet struct {
		Nodes map[string]accounting.Snapshot `json:"nodes"`
		Fleet accounting.Snapshot            `json:"fleet"`
	}
	if err := getJSON(nodes[0].base+"/v1/pool/accounting", &fleet); err != nil {
		return err
	}
	if len(fleet.Nodes) != 2 {
		return fmt.Errorf("pool: fleet accounting reports %d nodes, want the 2 survivors", len(fleet.Nodes))
	}
	var sumSpent, sumSaved float64
	sumJobs := 0
	for _, s := range fleet.Nodes {
		sumSpent += s.Simulated.SpentTotal
		sumSaved += s.Simulated.SavedCacheTotal
		sumJobs += s.Jobs
	}
	if fleet.Fleet.Jobs != sumJobs ||
		!relClose(fleet.Fleet.Simulated.SpentTotal, sumSpent) ||
		!relClose(fleet.Fleet.Simulated.SavedCacheTotal, sumSaved) {
		return fmt.Errorf("pool: fleet rollup %+v != sum of node ledgers (%d jobs, spent %v, saved %v)",
			fleet.Fleet, sumJobs, sumSpent, sumSaved)
	}

	// Campaign accounting: spent plus cache-avoided core-seconds of both
	// distributed campaigns must reconcile with the uncached single-node
	// reference — the paper's "what would this ensemble have cost" view.
	refCost := refAcct.Simulated.SpentTotal + refAcct.Simulated.SavedCacheTotal
	if refCost <= 0 {
		return errors.New("pool: reference accounting is empty")
	}
	for _, c := range []struct{ base, id, name string }{
		{nodes[0].base, st.ID, "cold"},
		{nodes[1].base, st2.ID, "warm"},
	} {
		var ca struct {
			Campaign string `json:"campaign"`
			accounting.Snapshot
		}
		if err := getJSON(c.base+"/v1/campaigns/"+c.id+"/accounting", &ca); err != nil {
			return fmt.Errorf("pool: %s campaign accounting: %w", c.name, err)
		}
		got := ca.Simulated.SpentTotal + ca.Simulated.SavedCacheTotal
		if !relClose(got, refCost) {
			return fmt.Errorf("pool: %s campaign spent+saved %v != reference %v", c.name, got, refCost)
		}
	}
	fmt.Printf("pool: fleet accounting reconciles; spent+saved matches reference (%.3f core-seconds)\n", refCost)
	fmt.Println("pool smoke passed")
	return nil
}

// relClose reports a ≈ b within 1e-9 relative tolerance — the same
// tolerance the fast-path verifier uses for simulated quantities.
func relClose(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

// poolAlivePeers returns how many peers base reports alive (0 on any
// error, so callers can poll it).
func poolAlivePeers(base string) int {
	var view struct {
		Members []struct {
			State string `json:"state"`
		} `json:"members"`
	}
	if err := getJSON(base+"/v1/pool/peers", &view); err != nil {
		return 0
	}
	alive := 0
	for _, m := range view.Members {
		if m.State == "alive" {
			alive++
		}
	}
	return alive
}

// isReady reports whether /readyz answers 200.
func isReady(base string) bool {
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// httpGetBody fetches a URL and returns its body as a string.
func httpGetBody(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return string(b), nil
}

// metricSum sums every sample of a Prometheus family in a text
// exposition (labels collapse into one total).
func metricSum(body, name string) float64 {
	total := 0.0
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		switch {
		case strings.HasPrefix(rest, "{"):
			i := strings.LastIndex(rest, "} ")
			if i < 0 {
				continue
			}
			rest = rest[i+2:]
		case strings.HasPrefix(rest, " "):
			rest = rest[1:]
		default:
			continue // longer family name sharing the prefix
		}
		if v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err == nil {
			total += v
		}
	}
	return total
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return decodeJSON(resp, v)
}

func decodeJSON(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, b)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
