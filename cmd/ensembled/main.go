// Command ensembled serves the campaign service over HTTP: a bounded
// worker pool evaluating ensemble placements with a content-addressed
// result cache, exposed as a JSON API.
//
// Usage:
//
//	ensembled [-addr :8080] [-workers N] [-queue N]
//	          [-cache-bytes N] [-cache-dir DIR] [-smoke]
//
// Endpoints:
//
//	POST /v1/campaigns        submit a sweep ({"configs":["table2"]})
//	GET  /v1/campaigns        list campaigns
//	GET  /v1/campaigns/{id}   poll a campaign (F(P) ranking once done)
//	GET  /v1/jobs/{id}        one job's status
//	GET  /v1/jobs/{id}/trace  Perfetto (Chrome JSON) trace of a done job
//	GET  /v1/stats            cache hit rate, queue depth, worker counters
//
// -smoke starts the server on a loopback listener, POSTs the paper's
// Table 2 campaign to it twice (cold then warm cache), prints the ranking
// and the cache stats, and exits — an end-to-end self-test used by
// `make serve`.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ensemblekit/internal/campaign"
	"ensemblekit/internal/obs"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "job queue depth (0 = default 256)")
		cacheBytes = flag.Int64("cache-bytes", 0, "in-memory result-cache budget (0 = default 256 MiB)")
		cacheDir   = flag.String("cache-dir", "", "optional on-disk result cache directory")
		smoke      = flag.Bool("smoke", false, "run the Table 2 self-test against a loopback server and exit")
	)
	flag.Parse()
	if err := run(*addr, *workers, *queue, *cacheBytes, *cacheDir, *smoke); err != nil {
		fmt.Fprintf(os.Stderr, "ensembled: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queue int, cacheBytes int64, cacheDir string, smoke bool) error {
	start := time.Now()
	rec := obs.NewRecorder(func() float64 { return time.Since(start).Seconds() })
	svc, err := campaign.NewService(campaign.Config{
		Workers:    workers,
		QueueDepth: queue,
		CacheBytes: cacheBytes,
		CacheDir:   cacheDir,
		Recorder:   rec,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	srv := &http.Server{Handler: campaign.NewServer(svc).Handler()}
	if smoke {
		addr = "127.0.0.1:0" // the self-test picks its own port
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}

	if smoke {
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		return smokeTest("http://" + ln.Addr().String())
	}

	fmt.Fprintf(os.Stderr, "ensembled: listening on %s (workers=%d)\n",
		ln.Addr(), svc.Stats().Workers)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// smokeTest drives the HTTP API end to end: it submits the paper's
// Table 2 campaign twice and verifies the second run is answered entirely
// from the cache.
func smokeTest(base string) error {
	ranking, err := runTable2(base)
	if err != nil {
		return err
	}
	fmt.Println("Table 2 campaign ranking (F at P^{U,A,P}):")
	for i, r := range ranking {
		fmt.Printf("  %d. %-5s %.4f\n", i+1, r.Name, r.Value)
	}

	// Second submission: every job's hash is now cached.
	if _, err := runTable2(base); err != nil {
		return fmt.Errorf("warm re-run: %w", err)
	}
	var stats struct {
		campaign.Stats
		HitRate float64 `json:"hitRate"`
	}
	if err := getJSON(base+"/v1/stats", &stats); err != nil {
		return err
	}
	fmt.Printf("cache: %d hits / %d misses (hit rate %.0f%%), %d jobs completed\n",
		stats.CacheHits, stats.CacheMisses, 100*stats.HitRate, stats.Completed)
	if stats.CacheHits == 0 {
		return errors.New("smoke: warm re-run produced no cache hits")
	}
	fmt.Println("smoke test passed")
	return nil
}

// runTable2 POSTs the Table 2 campaign and polls it to completion.
func runTable2(base string) ([]indicatorRanked, error) {
	body, _ := json.Marshal(map[string]any{
		"name":    "table2-smoke",
		"configs": []string{"table2"},
		"steps":   8,
	})
	resp, err := http.Post(base+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	var st campaign.CampaignStatus
	if err := decodeJSON(resp, &st); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if err := getJSON(base+"/v1/campaigns/"+st.ID, &st); err != nil {
			return nil, err
		}
		switch st.Status {
		case "done":
			out := make([]indicatorRanked, len(st.Result.Ranking))
			for i, r := range st.Result.Ranking {
				out[i] = indicatorRanked{Name: r.Name, Value: r.Value}
			}
			return out, nil
		case "failed":
			return nil, fmt.Errorf("campaign failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("campaign %s timed out (%d/%d jobs)", st.ID, st.Done, st.Total)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// indicatorRanked mirrors indicators.Ranked for JSON decoding.
type indicatorRanked struct {
	Name  string  `json:"Name"`
	Value float64 `json:"Value"`
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return decodeJSON(resp, v)
}

func decodeJSON(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, b)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
