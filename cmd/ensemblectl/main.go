// Command ensemblectl runs one workflow ensemble — a built-in Table 2/4
// configuration or a placement from a JSON file — on either backend and
// reports the Table 1 metrics, the efficiency model, and the performance
// indicators.
//
// Usage:
//
//	ensemblectl -config C1.5 [-backend simulated|real] [-steps N]
//	            [-tier dimes|burstbuffer|pfs] [-jitter F] [-seed N]
//	            [-nodes N] [-trace FILE] [-placement FILE.json]
//	            [-obs FILE] [-trace-format chrome|summary]
//	            [-faults PLAN.json] [-degrade failfast|drop]
//	            [-retries N] [-retry-backoff S] [-stage-timeout S]
//	            [-restarts N] [-restart-delay S]
//	            [-cpuprofile FILE] [-memprofile FILE]
//
// -faults loads a declarative fault plan (see examples/faultplan/) and
// injects it into the run; the resilience flags configure the recovery
// policy. With -degrade drop, members whose recovery budget is exhausted
// are dropped and the indicators aggregate over the survivors only.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"

	"ensemblekit/internal/campaign/accounting"
	"ensemblekit/internal/cluster"
	"ensemblekit/internal/core"
	"ensemblekit/internal/faults"
	"ensemblekit/internal/indicators"
	"ensemblekit/internal/metrics"
	"ensemblekit/internal/obs"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/report"
	"ensemblekit/internal/runtime"
	"ensemblekit/internal/trace"
)

// obsOutput bundles the instrumentation export flags.
type obsOutput struct {
	path   string
	format string // "chrome" or "summary"
}

func (o obsOutput) enabled() bool { return o.path != "" }

// validate rejects unknown formats before the run starts.
func (o obsOutput) validate() error {
	if o.enabled() && o.format != "chrome" && o.format != "summary" {
		return fmt.Errorf("unknown -trace-format %q (chrome or summary)", o.format)
	}
	return nil
}

// write exports the event stream in the selected format.
func (o obsOutput) write(events []obs.Event) error {
	f, err := os.Create(o.path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch o.format {
	case "chrome":
		err = obs.WriteChromeTrace(f, events)
	case "summary":
		err = obs.WriteSummary(f, obs.Analyze(events))
	}
	if err != nil {
		return err
	}
	fmt.Printf("obs %s trace written to %s (chrome traces open in ui.perfetto.dev)\n", o.format, o.path)
	return nil
}

func main() {
	var (
		configName = flag.String("config", "C1.5", "built-in configuration name (Table 2/4)")
		plFile     = flag.String("placement", "", "JSON placement file (overrides -config)")
		backend    = flag.String("backend", "simulated", "simulated or real")
		steps      = flag.Int("steps", runtime.PaperSteps, "in situ steps")
		tier       = flag.String("tier", "dimes", "DTL tier (simulated backend)")
		jitter     = flag.Float64("jitter", 0, "stage noise amplitude (simulated backend)")
		seed       = flag.Int64("seed", 1, "RNG seed")
		nodes      = flag.Int("nodes", 0, "machine size (0 = fit the placement)")
		traceOut   = flag.String("trace", "", "write the execution trace as JSON to this file")
		compareArg = flag.String("compare", "", "comma-separated configuration names to run side by side")
		obsOut     = flag.String("obs", "", "write the instrumentation trace to this file")
		obsFormat  = flag.String("trace-format", "chrome", "obs output format: chrome (Perfetto JSON) or summary (text)")
		faultsFile = flag.String("faults", "", "JSON fault plan to inject (see examples/faultplan/)")
		degrade    = flag.String("degrade", "", "degradation mode once recovery is exhausted: failfast (default) or drop")
		retries    = flag.Int("retries", 0, "retry budget per staging stage for transient faults")
		retryBack  = flag.Float64("retry-backoff", 0, "delay before the first retry in seconds (doubles per retry)")
		stageTO    = flag.Float64("stage-timeout", 0, "per-attempt staging-stage timeout in seconds (0 = none)")
		restarts   = flag.Int("restarts", 0, "crash-restart budget per component")
		restartDel = flag.Float64("restart-delay", 0, "time a component restart takes in seconds")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	mode, err := runtime.ParseDegradationMode(*degrade)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ensemblectl: %v\n", err)
		os.Exit(1)
	}
	res := runtime.Resilience{
		StagingRetries: *retries,
		RetryBackoff:   *retryBack,
		StageTimeout:   *stageTO,
		RestartLimit:   *restarts,
		RestartDelay:   *restartDel,
		Mode:           mode,
	}
	if err := realMain(*configName, *plFile, *backend, *steps, *tier, *jitter, *seed, *nodes,
		*traceOut, *compareArg, obsOutput{path: *obsOut, format: *obsFormat},
		*faultsFile, res, *cpuProfile, *memProfile); err != nil {
		fmt.Fprintf(os.Stderr, "ensemblectl: %v\n", err)
		os.Exit(1)
	}
}

func realMain(configName, plFile, backend string, steps int, tier string, jitter float64,
	seed int64, nodes int, traceOut, compareArg string, obsOut obsOutput,
	faultsFile string, res runtime.Resilience, cpuProfile, memProfile string) error {

	if err := obsOut.validate(); err != nil {
		return err
	}
	var plan *faults.Plan
	if faultsFile != "" {
		f, err := os.Open(faultsFile)
		if err != nil {
			return err
		}
		p, err := faults.ReadJSON(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("fault plan %s: %w", faultsFile, err)
		}
		plan = p
	}
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if memProfile != "" {
		defer func() {
			f, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ensemblectl: heap profile: %v\n", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ensemblectl: heap profile: %v\n", err)
			}
		}()
	}
	if compareArg != "" {
		return compare(compareArg, steps, tier, jitter, seed)
	}
	return run(configName, plFile, backend, steps, tier, jitter, seed, nodes, traceOut, obsOut, plan, res)
}

// compare runs several built-in configurations on the simulated backend
// and prints a side-by-side summary: makespan, mean efficiency, the final
// indicator objective, and straggling members.
func compare(names string, steps int, tier string, jitter float64, seed int64) error {
	t := report.NewTable("Configuration comparison",
		"config", "nodes", "makespan (s)", "mean E", "F(P^{U,A,P})", "stragglers")
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		p, ok := placement.ByName(name)
		if !ok {
			return fmt.Errorf("unknown configuration %q", name)
		}
		spec := cluster.Cori(maxNode(p) + 1)
		es := runtime.SpecForPlacement(p, steps)
		tr, err := runtime.RunSimulated(spec, p, es, runtime.SimOptions{
			Tier: tier, Jitter: jitter, Seed: seed,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		ens, err := metrics.FromTrace(tr)
		if err != nil {
			return err
		}
		effs := make([]float64, len(tr.Members))
		sum := 0.0
		for i, m := range tr.Members {
			ss, err := core.FromMemberTrace(m, core.ExtractOptions{})
			if err != nil {
				return err
			}
			e, err := ss.Efficiency()
			if err != nil {
				return err
			}
			effs[i] = e
			sum += e
		}
		f, err := indicators.Objective(p, effs, indicators.StageUAP)
		if err != nil {
			return err
		}
		straggle := "none"
		if s := ens.Stragglers(0.05); len(s) > 0 {
			parts := make([]string, len(s))
			for i, st := range s {
				parts[i] = fmt.Sprintf("EM%d(+%.0f%%)", st.Index+1, 100*st.Excess)
			}
			straggle = strings.Join(parts, " ")
		}
		t.AddRow(name, p.M(), tr.Makespan(), sum/float64(len(effs)), f, straggle)
	}
	fmt.Println(t.String())
	return nil
}

// tr2events picks the live event stream when a recorder ran, falling back
// to the post-hoc conversion of the trace (real backend).
func tr2events(rec *obs.Recorder, tr *trace.EnsembleTrace) []obs.Event {
	if rec.Enabled() {
		return rec.Events()
	}
	return obs.FromTrace(tr)
}

func maxNode(p placement.Placement) int {
	max := 0
	for _, n := range p.UsedNodes() {
		if n > max {
			max = n
		}
	}
	return max
}

func run(configName, plFile, backend string, steps int, tier string, jitter float64, seed int64, nodes int, traceOut string, obsOut obsOutput, plan *faults.Plan, res runtime.Resilience) error {
	var p placement.Placement
	if plFile != "" {
		f, err := os.Open(plFile)
		if err != nil {
			return err
		}
		defer f.Close()
		p, err = placement.ReadJSON(f)
		if err != nil {
			return err
		}
	} else {
		var ok bool
		p, ok = placement.ByName(configName)
		if !ok {
			return fmt.Errorf("unknown configuration %q (try C_f, C_c, C1.1..C1.5, C2.1..C2.8)", configName)
		}
	}
	fmt.Println(p.String())

	var tr *trace.EnsembleTrace
	var rec *obs.Recorder
	switch backend {
	case "simulated":
		if nodes <= 0 {
			for _, n := range p.UsedNodes() {
				if n+1 > nodes {
					nodes = n + 1
				}
			}
		}
		spec := cluster.Cori(nodes)
		es := runtime.SpecForPlacement(p, steps)
		if obsOut.enabled() {
			// Live instrumentation: the engine, DTL, fabric, and stage
			// loop feed the recorder as the run unfolds.
			rec = obs.NewRecorder(nil)
		}
		var err error
		tr, err = runtime.RunSimulated(spec, p, es, runtime.SimOptions{
			Tier: tier, Jitter: jitter, Seed: seed, Recorder: rec,
			Faults: plan, Resilience: res,
		})
		if err != nil {
			return err
		}
	case "real":
		var err error
		tr, err = runtime.RunReal(p, runtime.RealOptions{
			Steps: steps, Faults: plan, Resilience: res,
		})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown backend %q", backend)
	}
	if obsOut.enabled() {
		events := tr2events(rec, tr)
		if err := obsOut.write(events); err != nil {
			return err
		}
	}

	// Table 1 metrics.
	ens, err := metrics.FromTrace(tr)
	if err != nil {
		return err
	}
	ct := report.NewTable("Component metrics (Table 1)",
		"component", "exec time (s)", "LLC miss ratio", "memory intensity", "IPC")
	for _, c := range ens.Components {
		ct.AddRow(c.Name, c.ExecutionTime, c.LLCMissRatio, c.MemoryIntensity, c.IPC)
	}
	fmt.Println(ct.String())

	// Efficiency model per member. Dropped members (degradation mode
	// "drop") are annotated and excluded from the indicator aggregation.
	mt := report.NewTable("Efficiency model (Equations 1-3)",
		"member", "S*+W* (s)", "sigma (s)", "E", "Eq.4", "makespan (s)", "predicted (s)")
	surviving := placement.Placement{Name: p.Name}
	var effs []float64
	for i, m := range tr.Members {
		if m.Dropped() {
			mt.AddRow(fmt.Sprintf("EM%d (dropped)", i+1), "-", "-", "-", "-", m.Makespan(), "-")
			continue
		}
		ss, err := core.FromMemberTrace(m, core.ExtractOptions{})
		if err != nil {
			return err
		}
		e, err := ss.Efficiency()
		if err != nil {
			return err
		}
		surviving.Members = append(surviving.Members, p.Members[i])
		effs = append(effs, e)
		mt.AddRow(fmt.Sprintf("EM%d", i+1), ss.SimBusy(), ss.Sigma(), e,
			ss.SatisfiesEq4(), m.Makespan(), ss.Makespan(len(m.Simulation.Steps)))
	}
	fmt.Println(mt.String())
	fmt.Printf("Ensemble makespan: %s\n\n", report.FormatFloat(tr.Makespan()))
	if d := tr.DroppedMembers(); len(d) > 0 {
		fmt.Printf("Dropped members: %d of %d (excluded from the indicators below)\n\n", len(d), len(tr.Members))
	}

	// Indicators over the surviving members (Eq. 9).
	if len(effs) == 0 {
		fmt.Println("No surviving members; indicators skipped.")
	} else {
		rep, err := indicators.FullReport(surviving, effs)
		if err != nil {
			return err
		}
		it := report.NewTable("Performance indicators (Equations 5-9)",
			"stage", "F(P_i)")
		for _, s := range indicators.AllStages() {
			it.AddRow("F(P^{"+s.String()+"})", rep.PerStage[s.String()])
		}
		fmt.Println(it.String())
	}

	// Resource accounting: the same core-second ledger ensembled keeps
	// per campaign (GET /v1/campaigns/{id}/accounting), derived for this
	// single run.
	al := accounting.FromTrace(tr)
	at := report.NewTable("Resource accounting (simulated core-seconds)",
		"class", "busy", "idle", "total")
	for i, cls := range accounting.Classes() {
		sp := al.Splits()[i]
		at.AddRow(cls, sp.Busy, sp.Idle, sp.Busy+sp.Idle)
	}
	at.AddRow("total", al.Busy(), al.Idle(), al.Total())
	fmt.Println(at.String())

	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tr.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", traceOut)
	}
	return nil
}
