// Command ensemblectl runs one workflow ensemble — a built-in Table 2/4
// configuration or a placement from a JSON file — on either backend and
// reports the Table 1 metrics, the efficiency model, and the performance
// indicators.
//
// Usage:
//
//	ensemblectl -config C1.5 [-backend simulated|real] [-steps N]
//	            [-tier dimes|burstbuffer|pfs] [-jitter F] [-seed N]
//	            [-nodes N] [-trace FILE] [-placement FILE.json]
//	            [-obs FILE] [-trace-format chrome|summary]
//	            [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/core"
	"ensemblekit/internal/indicators"
	"ensemblekit/internal/metrics"
	"ensemblekit/internal/obs"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/report"
	"ensemblekit/internal/runtime"
	"ensemblekit/internal/trace"
)

// obsOutput bundles the instrumentation export flags.
type obsOutput struct {
	path   string
	format string // "chrome" or "summary"
}

func (o obsOutput) enabled() bool { return o.path != "" }

// validate rejects unknown formats before the run starts.
func (o obsOutput) validate() error {
	if o.enabled() && o.format != "chrome" && o.format != "summary" {
		return fmt.Errorf("unknown -trace-format %q (chrome or summary)", o.format)
	}
	return nil
}

// write exports the event stream in the selected format.
func (o obsOutput) write(events []obs.Event) error {
	f, err := os.Create(o.path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch o.format {
	case "chrome":
		err = obs.WriteChromeTrace(f, events)
	case "summary":
		err = obs.WriteSummary(f, obs.Analyze(events))
	}
	if err != nil {
		return err
	}
	fmt.Printf("obs %s trace written to %s (chrome traces open in ui.perfetto.dev)\n", o.format, o.path)
	return nil
}

func main() {
	var (
		configName = flag.String("config", "C1.5", "built-in configuration name (Table 2/4)")
		plFile     = flag.String("placement", "", "JSON placement file (overrides -config)")
		backend    = flag.String("backend", "simulated", "simulated or real")
		steps      = flag.Int("steps", runtime.PaperSteps, "in situ steps")
		tier       = flag.String("tier", "dimes", "DTL tier (simulated backend)")
		jitter     = flag.Float64("jitter", 0, "stage noise amplitude (simulated backend)")
		seed       = flag.Int64("seed", 1, "RNG seed")
		nodes      = flag.Int("nodes", 0, "machine size (0 = fit the placement)")
		traceOut   = flag.String("trace", "", "write the execution trace as JSON to this file")
		compareArg = flag.String("compare", "", "comma-separated configuration names to run side by side")
		obsOut     = flag.String("obs", "", "write the instrumentation trace to this file")
		obsFormat  = flag.String("trace-format", "chrome", "obs output format: chrome (Perfetto JSON) or summary (text)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if err := realMain(*configName, *plFile, *backend, *steps, *tier, *jitter, *seed, *nodes,
		*traceOut, *compareArg, obsOutput{path: *obsOut, format: *obsFormat},
		*cpuProfile, *memProfile); err != nil {
		fmt.Fprintf(os.Stderr, "ensemblectl: %v\n", err)
		os.Exit(1)
	}
}

func realMain(configName, plFile, backend string, steps int, tier string, jitter float64,
	seed int64, nodes int, traceOut, compareArg string, obsOut obsOutput,
	cpuProfile, memProfile string) error {

	if err := obsOut.validate(); err != nil {
		return err
	}
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if memProfile != "" {
		defer func() {
			f, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ensemblectl: heap profile: %v\n", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ensemblectl: heap profile: %v\n", err)
			}
		}()
	}
	if compareArg != "" {
		return compare(compareArg, steps, tier, jitter, seed)
	}
	return run(configName, plFile, backend, steps, tier, jitter, seed, nodes, traceOut, obsOut)
}

// compare runs several built-in configurations on the simulated backend
// and prints a side-by-side summary: makespan, mean efficiency, the final
// indicator objective, and straggling members.
func compare(names string, steps int, tier string, jitter float64, seed int64) error {
	t := report.NewTable("Configuration comparison",
		"config", "nodes", "makespan (s)", "mean E", "F(P^{U,A,P})", "stragglers")
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		p, ok := placement.ByName(name)
		if !ok {
			return fmt.Errorf("unknown configuration %q", name)
		}
		spec := cluster.Cori(maxNode(p) + 1)
		es := runtime.SpecForPlacement(p, steps)
		tr, err := runtime.RunSimulated(spec, p, es, runtime.SimOptions{
			Tier: tier, Jitter: jitter, Seed: seed,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		ens, err := metrics.FromTrace(tr)
		if err != nil {
			return err
		}
		effs := make([]float64, len(tr.Members))
		sum := 0.0
		for i, m := range tr.Members {
			ss, err := core.FromMemberTrace(m, core.ExtractOptions{})
			if err != nil {
				return err
			}
			e, err := ss.Efficiency()
			if err != nil {
				return err
			}
			effs[i] = e
			sum += e
		}
		f, err := indicators.Objective(p, effs, indicators.StageUAP)
		if err != nil {
			return err
		}
		straggle := "none"
		if s := ens.Stragglers(0.05); len(s) > 0 {
			parts := make([]string, len(s))
			for i, st := range s {
				parts[i] = fmt.Sprintf("EM%d(+%.0f%%)", st.Index+1, 100*st.Excess)
			}
			straggle = strings.Join(parts, " ")
		}
		t.AddRow(name, p.M(), tr.Makespan(), sum/float64(len(effs)), f, straggle)
	}
	fmt.Println(t.String())
	return nil
}

// tr2events picks the live event stream when a recorder ran, falling back
// to the post-hoc conversion of the trace (real backend).
func tr2events(rec *obs.Recorder, tr *trace.EnsembleTrace) []obs.Event {
	if rec.Enabled() {
		return rec.Events()
	}
	return obs.FromTrace(tr)
}

func maxNode(p placement.Placement) int {
	max := 0
	for _, n := range p.UsedNodes() {
		if n > max {
			max = n
		}
	}
	return max
}

func run(configName, plFile, backend string, steps int, tier string, jitter float64, seed int64, nodes int, traceOut string, obsOut obsOutput) error {
	var p placement.Placement
	if plFile != "" {
		f, err := os.Open(plFile)
		if err != nil {
			return err
		}
		defer f.Close()
		p, err = placement.ReadJSON(f)
		if err != nil {
			return err
		}
	} else {
		var ok bool
		p, ok = placement.ByName(configName)
		if !ok {
			return fmt.Errorf("unknown configuration %q (try C_f, C_c, C1.1..C1.5, C2.1..C2.8)", configName)
		}
	}
	fmt.Println(p.String())

	var tr *trace.EnsembleTrace
	var rec *obs.Recorder
	switch backend {
	case "simulated":
		if nodes <= 0 {
			for _, n := range p.UsedNodes() {
				if n+1 > nodes {
					nodes = n + 1
				}
			}
		}
		spec := cluster.Cori(nodes)
		es := runtime.SpecForPlacement(p, steps)
		if obsOut.enabled() {
			// Live instrumentation: the engine, DTL, fabric, and stage
			// loop feed the recorder as the run unfolds.
			rec = obs.NewRecorder(nil)
		}
		var err error
		tr, err = runtime.RunSimulated(spec, p, es, runtime.SimOptions{
			Tier: tier, Jitter: jitter, Seed: seed, Recorder: rec,
		})
		if err != nil {
			return err
		}
	case "real":
		var err error
		tr, err = runtime.RunReal(p, runtime.RealOptions{Steps: steps})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown backend %q", backend)
	}
	if obsOut.enabled() {
		events := tr2events(rec, tr)
		if err := obsOut.write(events); err != nil {
			return err
		}
	}

	// Table 1 metrics.
	ens, err := metrics.FromTrace(tr)
	if err != nil {
		return err
	}
	ct := report.NewTable("Component metrics (Table 1)",
		"component", "exec time (s)", "LLC miss ratio", "memory intensity", "IPC")
	for _, c := range ens.Components {
		ct.AddRow(c.Name, c.ExecutionTime, c.LLCMissRatio, c.MemoryIntensity, c.IPC)
	}
	fmt.Println(ct.String())

	// Efficiency model per member.
	mt := report.NewTable("Efficiency model (Equations 1-3)",
		"member", "S*+W* (s)", "sigma (s)", "E", "Eq.4", "makespan (s)", "predicted (s)")
	effs := make([]float64, len(tr.Members))
	for i, m := range tr.Members {
		ss, err := core.FromMemberTrace(m, core.ExtractOptions{})
		if err != nil {
			return err
		}
		e, err := ss.Efficiency()
		if err != nil {
			return err
		}
		effs[i] = e
		mt.AddRow(fmt.Sprintf("EM%d", i+1), ss.SimBusy(), ss.Sigma(), e,
			ss.SatisfiesEq4(), m.Makespan(), ss.Makespan(len(m.Simulation.Steps)))
	}
	fmt.Println(mt.String())
	fmt.Printf("Ensemble makespan: %s\n\n", report.FormatFloat(tr.Makespan()))

	// Indicators.
	rep, err := indicators.FullReport(p, effs)
	if err != nil {
		return err
	}
	it := report.NewTable("Performance indicators (Equations 5-9)",
		"stage", "F(P_i)")
	for _, s := range indicators.AllStages() {
		it.AddRow("F(P^{"+s.String()+"})", rep.PerStage[s.String()])
	}
	fmt.Println(it.String())

	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tr.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", traceOut)
	}
	return nil
}
