package main

import (
	"os"
	"path/filepath"
	"testing"

	"ensemblekit/internal/placement"
	"ensemblekit/internal/trace"
)

func TestRunBuiltinConfig(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "trace.json")
	if err := run("C_c", "", "simulated", 6, "dimes", 0, 1, 0, traceFile); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Config != "C_c" || len(tr.Members) != 1 {
		t.Errorf("unexpected trace: %s, %d members", tr.Config, len(tr.Members))
	}
}

func TestRunPlacementFile(t *testing.T) {
	plFile := filepath.Join(t.TempDir(), "p.json")
	f, err := os.Create(plFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := placement.C13().WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run("ignored", plFile, "simulated", 4, "dimes", 0, 1, 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("C9.9", "", "simulated", 4, "dimes", 0, 1, 0, ""); err == nil {
		t.Error("unknown config should fail")
	}
	if err := run("C_c", "", "quantum", 4, "dimes", 0, 1, 0, ""); err == nil {
		t.Error("unknown backend should fail")
	}
	if err := run("C_c", "/nonexistent/file.json", "simulated", 4, "dimes", 0, 1, 0, ""); err == nil {
		t.Error("missing placement file should fail")
	}
}

func TestRunRealBackend(t *testing.T) {
	if err := run("C_c", "", "real", 2, "", 0, 1, 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestCompareMode(t *testing.T) {
	if err := compare("C1.4, C1.5", 6, "dimes", 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := compare("C9.9", 6, "dimes", 0, 1); err == nil {
		t.Error("unknown config in compare should fail")
	}
}
