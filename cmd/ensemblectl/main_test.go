package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ensemblekit/internal/obs"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/runtime"
	"ensemblekit/internal/trace"
)

func TestRunBuiltinConfig(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "trace.json")
	if err := run("C_c", "", "simulated", 6, "dimes", 0, 1, 0, traceFile, obsOutput{}, nil, runtime.Resilience{}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Config != "C_c" || len(tr.Members) != 1 {
		t.Errorf("unexpected trace: %s, %d members", tr.Config, len(tr.Members))
	}
}

func TestRunPlacementFile(t *testing.T) {
	plFile := filepath.Join(t.TempDir(), "p.json")
	f, err := os.Create(plFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := placement.C13().WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run("ignored", plFile, "simulated", 4, "dimes", 0, 1, 0, "", obsOutput{}, nil, runtime.Resilience{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("C9.9", "", "simulated", 4, "dimes", 0, 1, 0, "", obsOutput{}, nil, runtime.Resilience{}); err == nil {
		t.Error("unknown config should fail")
	}
	if err := run("C_c", "", "quantum", 4, "dimes", 0, 1, 0, "", obsOutput{}, nil, runtime.Resilience{}); err == nil {
		t.Error("unknown backend should fail")
	}
	if err := run("C_c", "/nonexistent/file.json", "simulated", 4, "dimes", 0, 1, 0, "", obsOutput{}, nil, runtime.Resilience{}); err == nil {
		t.Error("missing placement file should fail")
	}
}

func TestRunRealBackend(t *testing.T) {
	if err := run("C_c", "", "real", 2, "", 0, 1, 0, "", obsOutput{}, nil, runtime.Resilience{}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareMode(t *testing.T) {
	if err := compare("C1.4, C1.5", 6, "dimes", 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := compare("C9.9", 6, "dimes", 0, 1); err == nil {
		t.Error("unknown config in compare should fail")
	}
}

func TestRunObsExport(t *testing.T) {
	dir := t.TempDir()
	chrome := filepath.Join(dir, "run.perfetto.json")
	if err := run("C1.5", "", "simulated", 4, "dimes", 0, 1, 0, "",
		obsOutput{path: chrome, format: "chrome"}, nil, runtime.Resilience{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(data); err != nil {
		t.Fatalf("exported chrome trace invalid: %v", err)
	}
	summary := filepath.Join(dir, "run.summary.txt")
	if err := run("C1.5", "", "simulated", 4, "dimes", 0, 1, 0, "",
		obsOutput{path: summary, format: "summary"}, nil, runtime.Resilience{}); err != nil {
		t.Fatal(err)
	}
	text, err := os.ReadFile(summary)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "per-node core occupancy") {
		t.Errorf("summary missing node occupancy section:\n%s", text)
	}
	// Real backend falls back to the post-hoc trace conversion.
	realOut := filepath.Join(dir, "real.perfetto.json")
	if err := run("C_c", "", "real", 2, "", 0, 1, 0, "",
		obsOutput{path: realOut, format: "chrome"}, nil, runtime.Resilience{}); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(realOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(data); err != nil {
		t.Fatalf("real-backend chrome trace invalid: %v", err)
	}
	// Unknown format is rejected up front.
	if err := (obsOutput{path: "x", format: "bogus"}).validate(); err == nil {
		t.Error("bogus trace format should fail validation")
	}
}
