// Command traceview inspects an execution trace produced by ensemblectl
// -trace (or the library's WriteJSON): per-component stage statistics, the
// efficiency model's verdict per member, and an ASCII timeline of the
// first steps.
//
// Usage:
//
//	traceview [-steps N] [-width N] [-csv FILE] [-obs FILE] [-utilization] FILE.json
package main

import (
	"flag"
	"fmt"
	"os"

	"ensemblekit/internal/core"
	"ensemblekit/internal/metrics"
	"ensemblekit/internal/obs"
	"ensemblekit/internal/report"
	"ensemblekit/internal/stats"
	"ensemblekit/internal/trace"
)

func main() {
	var (
		steps       = flag.Int("steps", 4, "timeline: number of leading steps to draw")
		width       = flag.Int("width", 100, "timeline width in characters")
		csvOut      = flag.String("csv", "", "also export every stage as CSV to this file")
		obsOut      = flag.String("obs", "", "export a Chrome/Perfetto trace of the run to this file")
		utilization = flag.Bool("utilization", false, "print the per-node core-occupancy table")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceview [-steps N] [-width N] [-csv FILE] [-obs FILE] [-utilization] FILE.json")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *steps, *width, *csvOut, *obsOut, *utilization); err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		os.Exit(1)
	}
}

func run(path string, steps, width int, csvOut, obsOut string, utilization bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadJSON(f)
	if err != nil {
		return err
	}
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("trace is structurally invalid: %w", err)
	}
	fmt.Printf("trace: config=%s backend=%s members=%d ensemble makespan=%s\n\n",
		tr.Config, tr.Backend, len(tr.Members), report.FormatFloat(tr.Makespan()))

	// Per-component stage statistics.
	st := report.NewTable("Per-component stage durations (mean over steps)",
		"component", "steps", "S/R (s)", "I^S/A (s)", "W/I^A (s)", "exec time (s)")
	for _, c := range tr.Components() {
		order := trace.SimulationStages()
		if c.Kind == trace.KindAnalysis {
			order = trace.AnalysisStages()
		}
		means := make([]float64, len(order))
		for i, s := range order {
			means[i] = stats.Mean(c.StageDurations(s))
		}
		st.AddRow(c.Name, len(c.Steps), means[0], means[1], means[2], c.ExecutionTime())
	}
	fmt.Println(st.String())

	// Table 1 metrics.
	ens, err := metrics.FromTrace(tr)
	if err != nil {
		return err
	}
	mt := report.NewTable("Table 1 metrics", "component", "LLC miss ratio", "memory intensity", "IPC")
	for _, c := range ens.Components {
		mt.AddRow(c.Name, c.LLCMissRatio, c.MemoryIntensity, c.IPC)
	}
	fmt.Println(mt.String())

	// Efficiency model per member.
	et := report.NewTable("Efficiency model", "member", "sigma (s)", "E", "Eq.4", "makespan (s)")
	for i, m := range tr.Members {
		ss, err := core.FromMemberTrace(m, core.ExtractOptions{})
		if err != nil {
			return err
		}
		e, err := ss.Efficiency()
		if err != nil {
			return err
		}
		et.AddRow(fmt.Sprintf("EM%d", i+1), ss.Sigma(), e, ss.SatisfiesEq4(), m.Makespan())
	}
	fmt.Println(et.String())

	// Timeline of the leading steps.
	g := report.NewGantt(fmt.Sprintf("Timeline (first %d steps; S/W simulation, R/A analysis)", steps), width)
	glyphs := map[trace.Stage]rune{
		trace.StageS: 'S', trace.StageW: 'W',
		trace.StageR: 'R', trace.StageA: 'A',
	}
	for _, c := range tr.Components() {
		row := g.AddRow(c.Name)
		for si, step := range c.Steps {
			if si >= steps {
				break
			}
			for _, sr := range step.Stages {
				if glyph, ok := glyphs[sr.Stage]; ok {
					g.AddSpan(row, sr.Start, sr.End(), glyph)
				}
			}
		}
	}
	fmt.Println(g.String())

	if utilization {
		// Per-node occupancy reconstructed from the trace's component
		// spans (the live event stream offers the same table via
		// ensemblectl -obs -trace-format summary).
		m := obs.Analyze(obs.FromTrace(tr))
		fmt.Println("## Per-node core occupancy")
		if err := obs.WriteUtilization(os.Stdout, m); err != nil {
			return err
		}
		fmt.Println()
	}

	if csvOut != "" {
		f, err := os.Create(csvOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tr.WriteStepsCSV(f); err != nil {
			return err
		}
		fmt.Printf("per-stage CSV written to %s\n", csvOut)
	}

	if obsOut != "" {
		f, err := os.Create(obsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := obs.WriteChromeTrace(f, obs.FromTrace(tr)); err != nil {
			return err
		}
		fmt.Printf("chrome trace written to %s (open in ui.perfetto.dev)\n", obsOut)
	}
	return nil
}
