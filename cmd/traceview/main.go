// Command traceview inspects an execution trace produced by ensemblectl
// -trace (or the library's WriteJSON): per-component stage statistics, the
// efficiency model's verdict per member, and an ASCII timeline of the
// first steps. With -spans it also consumes an OTLP span file (the
// payload of GET /v1/jobs/{id}/spans), prints the job's critical-path
// breakdown, and folds the service-level spans into the -obs export.
//
// Usage:
//
//	traceview [-steps N] [-width N] [-csv FILE] [-obs FILE] [-spans FILE] [-utilization] FILE.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ensemblekit/internal/campaign/accounting"
	"ensemblekit/internal/core"
	"ensemblekit/internal/metrics"
	"ensemblekit/internal/obs"
	"ensemblekit/internal/report"
	"ensemblekit/internal/stats"
	"ensemblekit/internal/telemetry/tracing"
	"ensemblekit/internal/trace"
)

func main() {
	var (
		steps       = flag.Int("steps", 4, "timeline: number of leading steps to draw")
		width       = flag.Int("width", 100, "timeline width in characters")
		csvOut      = flag.String("csv", "", "also export every stage as CSV to this file")
		obsOut      = flag.String("obs", "", "export a Chrome/Perfetto trace of the run to this file")
		spansIn     = flag.String("spans", "", "OTLP span file (GET /v1/jobs/{id}/spans): print the critical path; with -obs, merge service spans into the export")
		utilization = flag.Bool("utilization", false, "print the per-node core-occupancy table")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceview [-steps N] [-width N] [-csv FILE] [-obs FILE] [-spans FILE] [-utilization] FILE.json")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *steps, *width, *csvOut, *obsOut, *spansIn, *utilization); err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		os.Exit(1)
	}
}

func run(path string, steps, width int, csvOut, obsOut, spansIn string, utilization bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadJSON(f)
	if err != nil {
		return err
	}
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("trace is structurally invalid: %w", err)
	}
	fmt.Printf("trace: config=%s backend=%s members=%d ensemble makespan=%s\n\n",
		tr.Config, tr.Backend, len(tr.Members), report.FormatFloat(tr.Makespan()))

	// Per-component stage statistics.
	st := report.NewTable("Per-component stage durations (mean over steps)",
		"component", "steps", "S/R (s)", "I^S/A (s)", "W/I^A (s)", "exec time (s)")
	for _, c := range tr.Components() {
		order := trace.SimulationStages()
		if c.Kind == trace.KindAnalysis {
			order = trace.AnalysisStages()
		}
		means := make([]float64, len(order))
		for i, s := range order {
			means[i] = stats.Mean(c.StageDurations(s))
		}
		st.AddRow(c.Name, len(c.Steps), means[0], means[1], means[2], c.ExecutionTime())
	}
	fmt.Println(st.String())

	// Table 1 metrics.
	ens, err := metrics.FromTrace(tr)
	if err != nil {
		return err
	}
	mt := report.NewTable("Table 1 metrics", "component", "LLC miss ratio", "memory intensity", "IPC")
	for _, c := range ens.Components {
		mt.AddRow(c.Name, c.LLCMissRatio, c.MemoryIntensity, c.IPC)
	}
	fmt.Println(mt.String())

	// Efficiency model per member.
	et := report.NewTable("Efficiency model", "member", "sigma (s)", "E", "Eq.4", "makespan (s)")
	for i, m := range tr.Members {
		ss, err := core.FromMemberTrace(m, core.ExtractOptions{})
		if err != nil {
			return err
		}
		e, err := ss.Efficiency()
		if err != nil {
			return err
		}
		et.AddRow(fmt.Sprintf("EM%d", i+1), ss.Sigma(), e, ss.SatisfiesEq4(), m.Makespan())
	}
	fmt.Println(et.String())

	// Core-second ledger of the run, split by component class — the
	// trace-side view of the campaign accounting endpoint.
	al := accounting.FromTrace(tr)
	at := report.NewTable("Resource accounting (simulated core-seconds)",
		"class", "busy", "idle", "total")
	for i, cls := range accounting.Classes() {
		sp := al.Splits()[i]
		at.AddRow(cls, sp.Busy, sp.Idle, sp.Busy+sp.Idle)
	}
	at.AddRow("total", al.Busy(), al.Idle(), al.Total())
	fmt.Println(at.String())

	// Timeline of the leading steps.
	g := report.NewGantt(fmt.Sprintf("Timeline (first %d steps; S/W simulation, R/A analysis)", steps), width)
	glyphs := map[trace.Stage]rune{
		trace.StageS: 'S', trace.StageW: 'W',
		trace.StageR: 'R', trace.StageA: 'A',
	}
	for _, c := range tr.Components() {
		row := g.AddRow(c.Name)
		for si, step := range c.Steps {
			if si >= steps {
				break
			}
			for _, sr := range step.Stages {
				if glyph, ok := glyphs[sr.Stage]; ok {
					g.AddSpan(row, sr.Start, sr.End(), glyph)
				}
			}
		}
	}
	fmt.Println(g.String())

	if utilization {
		// Per-node occupancy reconstructed from the trace's component
		// spans (the live event stream offers the same table via
		// ensemblectl -obs -trace-format summary).
		m := obs.Analyze(obs.FromTrace(tr))
		fmt.Println("## Per-node core occupancy")
		if err := obs.WriteUtilization(os.Stdout, m); err != nil {
			return err
		}
		fmt.Println()
	}

	var spans []tracing.SpanData
	if spansIn != "" {
		sf, err := os.Open(spansIn)
		if err != nil {
			return err
		}
		spans, err = tracing.ReadOTLP(sf)
		sf.Close()
		if err != nil {
			return err
		}
		if err := printCriticalPath(spans); err != nil {
			return err
		}
	}

	if csvOut != "" {
		f, err := os.Create(csvOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tr.WriteStepsCSV(f); err != nil {
			return err
		}
		fmt.Printf("per-stage CSV written to %s\n", csvOut)
	}

	if obsOut != "" {
		f, err := os.Create(obsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		events := obs.FromTrace(tr)
		if toVirtual := desInverse(spans); toVirtual != nil {
			err = obs.WriteChromeTraceWithSpans(f, events, spans, toVirtual)
		} else {
			err = obs.WriteChromeTrace(f, events)
		}
		if err != nil {
			return err
		}
		fmt.Printf("chrome trace written to %s (open in ui.perfetto.dev)\n", obsOut)
	}
	return nil
}

// printCriticalPath renders the critical-path report of the job span in
// spans — or of the trace root when no job span is present (a foreign
// OTLP file) — in the same table style as the trace statistics.
func printCriticalPath(spans []tracing.SpanData) error {
	root, ok := jobRoot(spans)
	if !ok {
		return fmt.Errorf("span file holds no spans")
	}
	cp, err := tracing.ComputeCriticalPath(spans, root.SpanID)
	if err != nil {
		return err
	}
	fmt.Printf("spans: trace=%s root=%q depth=%d spans=%d critical-path segments=%d total=%.3fs\n\n",
		cp.TraceID, cp.RootName, tracing.Depth(spans), len(spans), len(cp.Segments), cp.TotalSec)
	bt := report.NewTable("Critical path by span kind", "kind", "seconds", "share")
	for _, k := range cp.ByKind {
		bt.AddRow(k.Kind, k.Sec, k.Frac)
	}
	fmt.Println(bt.String())
	return nil
}

// jobRoot picks the critical-path root: the earliest span of kind "job"
// (the /v1/jobs/{id}/spans payload holds the whole trace, and the job —
// not the HTTP request — is what the latency question is about), falling
// back to the trace root for span files from other producers.
func jobRoot(spans []tracing.SpanData) (tracing.SpanData, bool) {
	var job tracing.SpanData
	found := false
	for _, d := range spans {
		if d.Kind != "job" {
			continue
		}
		if !found || d.Start.Before(job.Start) {
			job, found = d, true
		}
	}
	if found {
		return job, true
	}
	return tracing.FindRoot(spans)
}

// desInverse rebuilds the wall → virtual mapping from the execute span's
// des.anchorUnixNano and des.scale attributes (the bridge's affine map,
// inverted), so the service spans can be placed on the obs export's
// virtual timeline. Returns nil when spans holds no execute span with
// the attributes — the export then degrades to the events-only trace.
func desInverse(spans []tracing.SpanData) func(time.Time) float64 {
	for _, d := range spans {
		if d.Kind != "execute" {
			continue
		}
		var anchorNano int64
		scale := 0.0
		for _, a := range d.Attrs {
			switch a.Key {
			case "des.anchorUnixNano":
				if v, ok := a.Value.(int64); ok {
					anchorNano = v
				}
			case "des.scale":
				if v, ok := a.Value.(float64); ok {
					scale = v
				}
			}
		}
		if anchorNano != 0 && scale > 0 {
			anchor := time.Unix(0, anchorNano)
			return func(wt time.Time) float64 {
				return wt.Sub(anchor).Seconds() / scale
			}
		}
	}
	return nil
}
