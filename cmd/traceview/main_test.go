package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/obs"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/runtime"
	"ensemblekit/internal/telemetry/tracing"
)

func writeSampleTrace(t *testing.T) string {
	t.Helper()
	cfg := placement.Cc()
	tr, err := runtime.RunSimulated(cluster.Cori(1), cfg,
		runtime.SpecForPlacement(cfg, 4), runtime.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tr.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunOnValidTrace(t *testing.T) {
	if err := run(writeSampleTrace(t), 3, 80, filepath.Join(t.TempDir(), "steps.csv"), "", "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("/nonexistent.json", 3, 80, "", "", "", false); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, 3, 80, "", "", "", false); err == nil {
		t.Error("malformed trace should fail")
	}
}

func TestRunObsExportAndUtilization(t *testing.T) {
	path := writeSampleTrace(t)
	out := filepath.Join(t.TempDir(), "run.perfetto.json")
	if err := run(path, 3, 80, "", out, "", true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(data); err != nil {
		t.Fatalf("traceview chrome export invalid: %v", err)
	}
}

// writeSampleSpans writes an OTLP span file shaped like the service's
// /v1/jobs/{id}/spans payload: a job root, an execute child carrying
// the des.* inverse-map attributes, and a component grandchild.
func writeSampleSpans(t *testing.T) string {
	t.Helper()
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	ids := func(b byte) (tid tracing.TraceID, sid tracing.SpanID) {
		for i := range tid {
			tid[i] = 0xaa
		}
		sid[7] = b
		return
	}
	tid, jobID := ids(1)
	_, execID := ids(2)
	_, compID := ids(3)
	spans := []tracing.SpanData{
		{TraceID: tid, SpanID: jobID, Name: "job j-1", Kind: "job",
			Start: base, End: base.Add(2 * time.Second)},
		{TraceID: tid, SpanID: execID, Parent: jobID, Name: "execute", Kind: "execute",
			Start: base.Add(100 * time.Millisecond), End: base.Add(1900 * time.Millisecond),
			Attrs: []tracing.Attr{
				tracing.Int64("des.anchorUnixNano", base.Add(100*time.Millisecond).UnixNano()),
				tracing.Float("des.scale", 0.5),
			}},
		{TraceID: tid, SpanID: compID, Parent: execID, Name: "S1", Kind: "component",
			Start: base.Add(200 * time.Millisecond), End: base.Add(1800 * time.Millisecond)},
	}
	path := filepath.Join(t.TempDir(), "spans.json")
	var buf bytes.Buffer
	if err := tracing.WriteOTLP(&buf, "test", spans); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSpansCriticalPathAndMergedExport(t *testing.T) {
	path := writeSampleTrace(t)
	spansPath := writeSampleSpans(t)
	out := filepath.Join(t.TempDir(), "merged.perfetto.json")
	if err := run(path, 3, 80, "", out, spansPath, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(data); err != nil {
		t.Fatalf("merged chrome export invalid: %v", err)
	}
	if !bytes.Contains(data, []byte(`"service"`)) {
		t.Error("merged export lacks the service process carrying the job spans")
	}
}

func TestRunSpansErrors(t *testing.T) {
	path := writeSampleTrace(t)
	if err := run(path, 3, 80, "", "", "/nonexistent-spans.json", false); err == nil {
		t.Error("missing span file should fail")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"resourceSpans":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 3, 80, "", "", empty, false); err == nil {
		t.Error("span file without spans should fail")
	}
}
