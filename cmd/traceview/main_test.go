package main

import (
	"os"
	"path/filepath"
	"testing"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/obs"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/runtime"
)

func writeSampleTrace(t *testing.T) string {
	t.Helper()
	cfg := placement.Cc()
	tr, err := runtime.RunSimulated(cluster.Cori(1), cfg,
		runtime.SpecForPlacement(cfg, 4), runtime.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tr.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunOnValidTrace(t *testing.T) {
	if err := run(writeSampleTrace(t), 3, 80, filepath.Join(t.TempDir(), "steps.csv"), "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("/nonexistent.json", 3, 80, "", "", false); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, 3, 80, "", "", false); err == nil {
		t.Error("malformed trace should fail")
	}
}

func TestRunObsExportAndUtilization(t *testing.T) {
	path := writeSampleTrace(t)
	out := filepath.Join(t.TempDir(), "run.perfetto.json")
	if err := run(path, 3, 80, "", out, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(data); err != nil {
		t.Fatalf("traceview chrome export invalid: %v", err)
	}
}
