package ensemblekit

import (
	"context"
	"encoding/json"
	"runtime" // stdlib: GOMAXPROCS
	"testing"

	"ensemblekit/internal/obs"
)

// This file pins the bit-identity contracts of the two new execution
// paths: the closed-form steady-state fast path must reproduce the DES
// trace byte-for-byte with zero events dispatched, and the member-parallel
// path must produce the same trace as the joint path — and the same obs
// stream as itself — at every parallelism degree.

func traceJSON(t testing.TB, tr *EnsembleTrace) string {
	t.Helper()
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFastPathBitIdentical runs every Table 2 and Table 4 placement
// fault-free at the golden scale through both the DES and the fast path.
// Every config the fast path serves must match the DES trace bit for bit
// and report zero DES events.
func TestFastPathBitIdentical(t *testing.T) {
	world := NewWorld()
	configs := append(ConfigsTable2(), ConfigsTable4()...)
	hits := 0
	for _, p := range configs {
		es := SpecForPlacement(p, goldenSteps)
		ref, err := RunSimulated(Cori(3), p, es, SimOptions{})
		if err != nil {
			t.Fatalf("%s: DES: %v", p.Name, err)
		}
		got, info, err := RunSimulatedInfo(Cori(3), p, es, SimOptions{FastPath: true, World: world})
		if err != nil {
			t.Fatalf("%s: fast path: %v", p.Name, err)
		}
		if traceJSON(t, got) != traceJSON(t, ref) {
			t.Errorf("%s: fast-path trace differs from DES trace", p.Name)
		}
		if info.FastPath {
			hits++
			if info.DESEvents != 0 {
				t.Errorf("%s: fast path dispatched %d DES events, want 0", p.Name, info.DESEvents)
			}
		}
	}
	if hits == 0 {
		t.Fatalf("fast path served none of the %d fault-free configs", len(configs))
	}
	t.Logf("fast path served %d/%d configs", hits, len(configs))
}

// TestFastPathBailsOnFaults pins the fallback: a faulted run must never be
// served by the closed form even when the hint is set.
func TestFastPathBailsOnFaults(t *testing.T) {
	p := ConfigByNameMust(t, "C1.4")
	es := SpecForPlacement(p, goldenSteps)
	opts := SimOptions{
		FastPath: true,
		Faults: &FaultPlan{Name: "degraded", Seed: 7, Network: []NetworkWindow{
			{Start: 2, End: 30, Factor: 0.25},
		}},
	}
	ref, err := RunSimulated(Cori(3), p, es, SimOptions{Faults: opts.Faults})
	if err != nil {
		t.Fatal(err)
	}
	got, info, err := RunSimulatedInfo(Cori(3), p, es, opts)
	if err != nil {
		t.Fatal(err)
	}
	if info.FastPath {
		t.Fatal("fast path served a faulted run")
	}
	if traceJSON(t, got) != traceJSON(t, ref) {
		t.Error("faulted run with fast-path hint differs from plain DES run")
	}
}

// memberParallelCase runs p at the given member-parallelism degree with a
// recorder attached, returning the trace JSON, the obs stream hash, and
// the effective degree.
func memberParallelCase(t testing.TB, p Placement, base SimOptions, degree int, world *World) (string, string, int) {
	t.Helper()
	rec := obs.NewRecorder(nil)
	opts := base
	opts.Recorder = rec
	opts.MemberParallelism = degree
	opts.World = world
	es := SpecForPlacement(p, goldenSteps)
	tr, info, err := RunSimulatedInfo(Cori(3), p, es, opts)
	if err != nil {
		t.Fatalf("%s degree %d: %v", p.Name, degree, err)
	}
	return traceJSON(t, tr), obsStreamHash(rec.Events()), info.MemberParallelism
}

// campaignFingerprint runs the Table 2 sweep on a service built from cfg
// and returns the campaign fingerprint plus the final service stats.
func campaignFingerprint(t *testing.T, cfg ServiceConfig) (string, ServiceStats) {
	t.Helper()
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	res, err := RunCampaign(context.Background(), svc, Sweep{
		Placements: ConfigsTable2(),
		Seeds:      []int64{1, 2},
		Steps:      goldenSteps,
	})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := res.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return fp, svc.Stats()
}

// TestCampaignHintsFingerprintInvariant pins the service-level contract:
// member parallelism, the fast path, and the verified fast path are pure
// execution hints — the campaign fingerprint is identical to the default
// configuration's, while the fast-path counters prove the hints actually
// took effect.
func TestCampaignHintsFingerprintInvariant(t *testing.T) {
	base, _ := campaignFingerprint(t, ServiceConfig{Workers: 4})

	mp, _ := campaignFingerprint(t, ServiceConfig{Workers: 4, MemberParallelism: 2})
	if mp != base {
		t.Errorf("member-parallel fingerprint %s != base %s", mp, base)
	}

	fp, st := campaignFingerprint(t, ServiceConfig{Workers: 4, FastPath: true})
	if fp != base {
		t.Errorf("fast-path fingerprint %s != base %s", fp, base)
	}
	if st.FastPathHits == 0 {
		t.Error("fast-path service recorded no hits over the fault-free Table 2 sweep")
	}

	vp, st := campaignFingerprint(t, ServiceConfig{
		Workers: 4, MemberParallelism: 2, VerifyFastPath: true,
	})
	if vp != base {
		t.Errorf("verified fast-path fingerprint %s != base %s", vp, base)
	}
	if st.FastPathHits == 0 {
		t.Error("verify-fastpath service recorded no hits")
	}
	if st.FastPathVerified != st.FastPathHits {
		t.Errorf("verified %d of %d fast-path hits, want all", st.FastPathVerified, st.FastPathHits)
	}
}

// TestMemberParallelDeterminism pins the member-parallel contract on every
// multi-member Table 2/4 placement, fault-free and with seeded jitter: the
// EnsembleTrace is identical to the joint path at every degree, and the
// merged obs stream is byte-identical across degrees 1, 2, and
// GOMAXPROCS (the canonical member-index merge order cannot depend on
// completion order). Run under -race in CI.
func TestMemberParallelDeterminism(t *testing.T) {
	world := NewWorld()
	variants := []struct {
		name string
		opts SimOptions
	}{
		{"fault-free", SimOptions{}},
		{"jitter", SimOptions{Jitter: 0.05, Seed: 42}},
	}
	degrees := []int{1, 2, runtime.GOMAXPROCS(0)}
	split := 0
	for _, p := range append(ConfigsTable2(), ConfigsTable4()...) {
		if len(p.Members) < 2 {
			continue
		}
		for _, v := range variants {
			jointTrace, _, _ := memberParallelCase(t, p, v.opts, 0, world)
			refTrace, refObs, deg := memberParallelCase(t, p, v.opts, 1, world)
			if refTrace != jointTrace {
				t.Errorf("%s/%s: split trace differs from joint trace", p.Name, v.name)
			}
			if deg > 0 {
				split++
			}
			for _, d := range degrees[1:] {
				gotTrace, gotObs, _ := memberParallelCase(t, p, v.opts, d, world)
				if gotTrace != refTrace {
					t.Errorf("%s/%s: trace at degree %d differs from degree 1", p.Name, v.name, d)
				}
				if gotObs != refObs {
					t.Errorf("%s/%s: obs stream at degree %d differs from degree 1", p.Name, v.name, d)
				}
			}
		}
	}
	if split == 0 {
		t.Fatal("no placement took the member-parallel path")
	}
}
