GO ?= go

.PHONY: all build test check race bench cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check fails if vet reports problems or any file is not gofmt-clean.
check:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# race exercises the packages where the instrumentation layer touches the
# cooperative scheduler, under the race detector.
race:
	$(GO) test -race ./internal/obs/... ./internal/sim/...

bench:
	$(GO) test -bench=. -benchmem .

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
