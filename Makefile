GO ?= go

.PHONY: all build test check race bench bench-json cover serve chaos pool-smoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check fails if vet reports problems, any file is not gofmt-clean, or
# a metric family violates the naming conventions (telemetry.Lint).
check:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) test -run 'Lint' ./internal/telemetry/ ./internal/campaign/ ./internal/campaign/pool/

# race runs the whole test suite under the race detector; the campaign
# service makes every package a concurrency consumer.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# bench-json runs the full benchmark suite and writes a dated,
# machine-readable snapshot (BENCH_<date>.json) for committing alongside
# perf-sensitive changes; cmd/benchjson aggregates repeated -count runs.
bench-json:
	$(GO) test -run '^$$' -bench=. -benchmem . | $(GO) run ./cmd/benchjson -o BENCH_$$(date +%Y-%m-%d).json

# serve builds the campaign HTTP server and smoke-tests it end to end:
# POST the Table 2 campaign to a loopback listener, cold then warm cache.
serve:
	$(GO) build ./cmd/ensembled
	$(GO) run ./cmd/ensembled -smoke

# chaos is the crash-recovery smoke: start a server, SIGKILL it
# mid-campaign, restart it on the same state dir, and require the resumed
# campaign to complete with results identical to an uninterrupted run.
chaos:
	$(GO) run ./cmd/ensembled -smoke-chaos

# pool-smoke is the distributed-fabric smoke: three ensembled processes
# form a localhost pool, a campaign sharded across them must fingerprint
# identically to a single-node run (even with one peer SIGKILLed
# mid-campaign), and the pool metrics must show cross-node cache hits.
pool-smoke:
	$(GO) run ./cmd/ensembled -smoke-pool

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
