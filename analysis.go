package ensemblekit

import (
	"ensemblekit/internal/core"
	"ensemblekit/internal/heuristic"
	"ensemblekit/internal/indicators"
	"ensemblekit/internal/metrics"
	"ensemblekit/internal/scheduler"
	"ensemblekit/internal/trace"
)

// This file exposes the analysis-side extensions of the library: automatic
// steady-state detection, straggler identification, efficiency-sensitivity
// analysis, the joint provisioning grid search, and the annealing
// scheduler.

// GridPoint is one (stride, cores) cell of the joint provisioning sweep.
type GridPoint = heuristic.GridPoint

// GridOptions bounds the joint provisioning sweep.
type GridOptions = heuristic.GridOptions

// Straggler is a slow ensemble member flagged by StragglersOf.
type Straggler = metrics.Straggler

// AnnealOptions tunes the simulated-annealing placement search.
type AnnealOptions = scheduler.AnnealOptions

// AutoSteadyState extracts a member's steady state with data-driven
// warm-up detection (coefficient-of-variation threshold) instead of a
// fixed trim fraction, returning the detected warm-up step count.
func AutoSteadyState(tr *EnsembleTrace, member int) (SteadyState, int, error) {
	if member < 0 || member >= len(tr.Members) {
		return SteadyState{}, 0, errOutOfRange(member, len(tr.Members))
	}
	return core.AutoExtract(tr.Members[member], core.DetectOptions{})
}

// StragglersOf identifies members whose makespan exceeds the ensemble
// median by more than the threshold fraction (0 uses the default 10%).
func StragglersOf(tr *EnsembleTrace, threshold float64) ([]Straggler, error) {
	ens, err := metrics.FromTrace((*trace.EnsembleTrace)(tr))
	if err != nil {
		return nil, err
	}
	return ens.Stragglers(threshold), nil
}

// EfficiencySensitivity returns ∂F/∂E_i for every member at the given
// indicator stage: where a unit of efficiency tuning pays most.
func EfficiencySensitivity(p Placement, efficiencies []float64, stage StageSet) ([]float64, error) {
	return indicators.ObjectiveSensitivity(p, efficiencies, stage)
}

// ProvisioningGrid sweeps the analytic model over the (stride, analysis
// cores) plane — the joint question the paper's Section 3.4 fixes by
// assumption.
func ProvisioningGrid(spec ClusterSpec, opts GridOptions) ([]GridPoint, error) {
	return heuristic.GridSearch(spec, nil, opts)
}

// BestThroughput picks the grid point maximizing MD steps per wall-clock
// second among those satisfying Equation 4.
func BestThroughput(points []GridPoint) (GridPoint, error) {
	return heuristic.BestThroughput(points)
}

// SchedulePlacementAnneal searches placements by simulated annealing with
// a hill-climbing polish — the strategy for instances too large for
// Exhaustive where Greedy's single-move neighbourhood may stall.
func SchedulePlacementAnneal(spec ClusterSpec, es EnsembleSpec, maxNodes int, opts AnnealOptions) (ScheduleResult, error) {
	obj := scheduler.AnalyticObjective(spec, nil, es, indicators.StageUAP)
	return scheduler.Anneal(spec, es, maxNodes, obj, opts)
}
