package ensemblekit

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"testing"

	"ensemblekit/internal/obs"
	"ensemblekit/internal/runtime"
)

// This file pins the determinism guarantee of the simulated backend: the
// engine and fabric optimizations must not move a single simulated
// timestamp. Every Table 2 and Table 4 placement (plus seeded-jitter and
// fault-plan variants covering the interrupt, timeout, restart, and
// degradation paths) is run with a recorder attached; the full obs event
// stream is serialized exactly (hex floats preserve every bit) and its
// SHA-256 compared to a pinned value recorded before the optimizations
// landed. A hash mismatch means the event stream changed — either a
// determinism regression or an intentional semantic change that must
// re-pin these values consciously (run with GOLDEN_PRINT=1 to list them).

// obsStreamHash serializes an obs event stream bit-exactly and hashes it.
func obsStreamHash(events []obs.Event) string {
	h := sha256.New()
	buf := make([]byte, 0, 160)
	for _, ev := range events {
		buf = buf[:0]
		buf = strconv.AppendFloat(buf, ev.T, 'x', -1, 64)
		buf = append(buf, '|')
		buf = strconv.AppendUint(buf, uint64(ev.Kind), 10)
		buf = append(buf, '|')
		buf = append(buf, ev.Subject...)
		buf = append(buf, '|')
		buf = append(buf, ev.Detail...)
		buf = append(buf, '|')
		buf = strconv.AppendInt(buf, int64(ev.Node), 10)
		buf = append(buf, '|')
		buf = strconv.AppendInt(buf, int64(ev.Node2), 10)
		buf = append(buf, '|')
		buf = strconv.AppendFloat(buf, ev.Value, 'x', -1, 64)
		buf = append(buf, '\n')
		h.Write(buf)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// goldenSteps keeps the golden runs fast while still exercising the
// steady-state protocol (same reduced scale as the benchmark suite).
const goldenSteps = 8

// goldenObsHashes pins the SHA-256 of the obs event stream for every
// Table 2 and Table 4 placement at the golden scale, recorded on the
// pre-optimization engine (PR 4 baseline). These values must never change
// without a conscious re-pin.
var goldenObsHashes = map[string]string{
	"C_f":  "12dc3e4c93b0b8681a76aa2c2204ec571b42a96b786106445af6d1934214ba5c",
	"C_c":  "5d1eea9e2cc9090d3d9992b6fb12d58c772a5af7d90013263bd01de4c9802388",
	"C1.1": "8c26b3f9f3310bf8851e82294c88a092b9f20a641df639229fe654db38344041",
	"C1.2": "7470208d359ef87afc699dd7e615fda5a7011322be6a7ca6c77c39c30392fb48",
	"C1.3": "ad31c75f9ef2c1cfa0dcd1c4fe83df1f80a0f198b4beebbe4e45fd94d8309641",
	"C1.4": "c83065cfbff29a7f020223b498441ee41d4194e6c3e96cdbff6e6346a6d53997",
	"C1.5": "97ab1366df7fe68560ce9c9fc727242d56a51666a7738c31fbc8cd6290a92933",
	"C2.1": "e63d54f4f8635344d976b6fec329c35a6faa373e6c0ae7d09713ef8e7ff98cd0",
	"C2.2": "7f033d24c2019d788398dae5c7342f91bbf62b674981873ae4148b00046e670e",
	"C2.3": "c5f0ffef9e862e9e9ac19e4464b8b8c65f6c854a0d9aba7ee55ed98e3a9dccfc",
	"C2.4": "b5bcac654abf27ea9cfb675f20ad33149144dabda58157e12aa8b267965ae843",
	"C2.5": "2f2ed4172b4ad6dbc375951bd42aea6430fd5d5b7ac70b01abbf82b2fecac02c",
	"C2.6": "0d3a9e35cff75127df6611bc89aaca7a101dea7c4b19ae9229fed157e0a4ed69",
	"C2.7": "dcd5cb422bcb9c7b10365fc075f7e49fc6fca4864939457b194f398d1e82d7f3",
	"C2.8": "5c689b6e8126984f0a82ed32454b7e74035bf6075066a09094e59209765020f8",
}

// goldenFaultHashes pins variants that drive the engine's recovery paths:
// seeded jitter, staging retries with backoff, stage timeouts
// (AtCancelable guards), network degradation windows (fabric re-balance
// boundaries), node crashes with restarts, stragglers, and the
// drop-member policy (interrupt storms).
var goldenFaultHashes = map[string]string{
	"jitter":     "27e718acf16b0e066a3f42e7580a2963f6c6ba09a5582b72a042606aa6dbe3aa",
	"degraded":   "a9517002b068ef054a9480f8c38a5509dc72a1a6c00c858a04c33f6ffe1836fd",
	"resilience": "30e547b71ea7f061abf04b8a76b3ada028d2479d63c282b1451ed09cc770d8c6",
	"dropmember": "6b0c9df19a41285dc963031c1f9760ced806b571511dbada46aeea5fdc2177c4",
}

func goldenRun(t testing.TB, p Placement, opts SimOptions) string {
	t.Helper()
	rec := obs.NewRecorder(nil)
	opts.Recorder = rec
	es := SpecForPlacement(p, goldenSteps)
	if _, err := RunSimulated(Cori(3), p, es, opts); err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	return obsStreamHash(rec.Events())
}

func checkGolden(t *testing.T, name, got string, pins map[string]string) {
	t.Helper()
	if os.Getenv("GOLDEN_PRINT") != "" {
		fmt.Printf("\t%q: %q,\n", name, got)
		return
	}
	want, ok := pins[name]
	if !ok {
		t.Fatalf("no pinned hash for %q (got %s); run with GOLDEN_PRINT=1 to list", name, got)
	}
	if got != want {
		t.Errorf("%s: obs stream hash = %s, want %s (event stream changed: determinism regression or unpinned semantic change)", name, got, want)
	}
}

// TestGoldenObsStreamTable2 pins the event stream of every Table 2
// placement on the simulated backend.
func TestGoldenObsStreamTable2(t *testing.T) {
	for _, p := range ConfigsTable2() {
		checkGolden(t, p.Name, goldenRun(t, p, SimOptions{}), goldenObsHashes)
	}
}

// TestGoldenObsStreamTable4 pins the event stream of every Table 4
// placement on the simulated backend.
func TestGoldenObsStreamTable4(t *testing.T) {
	for _, p := range ConfigsTable4() {
		checkGolden(t, p.Name, goldenRun(t, p, SimOptions{}), goldenObsHashes)
	}
}

// TestGoldenObsStreamFaultPaths pins event streams through the engine's
// recovery machinery: seeded jitter, fault plans (staging retries,
// degradation windows, crashes, stragglers), stage timeouts, and the
// drop-member interrupt path. These cover the cancellable-event,
// interrupt, and fabric re-balance fast paths that the plain Table runs
// do not reach.
func TestGoldenObsStreamFaultPaths(t *testing.T) {
	cases := []struct {
		name string
		p    Placement
		opts SimOptions
	}{
		{"jitter", ConfigC15(), SimOptions{Jitter: 0.05, Seed: 42}},
		{"degraded", ConfigByNameMust(t, "C1.4"), SimOptions{
			Faults: &FaultPlan{Name: "degraded", Seed: 7, Network: []NetworkWindow{
				{Start: 2, End: 30, Factor: 0.25},
				{Start: 10, End: 40, Factor: 0.5},
			}},
		}},
		{"resilience", ConfigByNameMust(t, "C1.4"), SimOptions{
			Faults: &FaultPlan{Name: "res", Seed: 11,
				Staging:    []StagingFault{{Rate: 0.05}},
				Stragglers: []StragglerFault{{Component: "m0.*", Start: 5, End: 60, Factor: 1.5}},
			},
			Resilience: Resilience{StagingRetries: 4, RetryBackoff: 0.2, StageTimeout: 45},
		}},
		{"dropmember", ConfigByNameMust(t, "C2.2"), SimOptions{
			Faults: &FaultPlan{Name: "drop", Seed: 3,
				Crashes: []NodeCrash{{Node: 1, At: 12}},
			},
			Resilience: Resilience{Mode: DropMember},
		}},
	}
	for _, c := range cases {
		checkGolden(t, c.name, goldenRun(t, c.p, c.opts), goldenFaultHashes)
	}
}

// ConfigByNameMust resolves a named paper placement or fails the test.
func ConfigByNameMust(t testing.TB, name string) Placement {
	t.Helper()
	p, ok := ConfigByName(name)
	if !ok {
		t.Fatalf("unknown placement %q", name)
	}
	return p
}

// TestCampaignSweepByteIdentical pins the campaign-service guarantee on
// the same seeds the benchmark suite uses: RunCampaign through the pooled
// worker path must produce traces byte-identical to serial execution of
// the same job specs, cold cache and warm cache alike.
func TestCampaignSweepByteIdentical(t *testing.T) {
	sweep := Sweep{
		Placements: ConfigsTable2(),
		Seeds:      []int64{1, 2, 3},
		Steps:      goldenSteps,
	}
	cands, err := sweep.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// Serial reference: trace bytes per job hash.
	serial := make(map[string][]byte)
	for _, c := range cands {
		for _, js := range c.Specs {
			hash, err := js.Hash()
			if err != nil {
				t.Fatal(err)
			}
			opts := js.Sim.Options()
			opts.Faults = js.Faults
			tr, err := RunSimulated(js.Cluster, js.Placement, js.Ensemble, opts)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(tr)
			if err != nil {
				t.Fatal(err)
			}
			serial[hash] = b
		}
	}
	svc, err := NewService(ServiceConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for pass, wantHits := range []bool{false, true} {
		res, err := RunCampaign(context.Background(), svc, sweep)
		if err != nil {
			t.Fatal(err)
		}
		if wantHits && res.CacheHits != res.Jobs {
			t.Errorf("pass %d: cache hits = %d, want %d (warm re-run must be fully cached)", pass, res.CacheHits, res.Jobs)
		}
		seen := 0
		for _, cr := range res.Candidates {
			for _, jr := range cr.Results {
				want, ok := serial[jr.Hash]
				if !ok {
					t.Fatalf("pass %d: job %s not in serial reference", pass, jr.Hash)
				}
				got, err := json.Marshal(jr.Trace)
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != string(want) {
					t.Errorf("pass %d: job %s: pooled trace differs from serial", pass, jr.Hash)
				}
				seen++
			}
		}
		if seen != len(serial) {
			t.Errorf("pass %d: campaign returned %d jobs, want %d", pass, seen, len(serial))
		}
	}
}

var _ = runtime.PaperSteps // keep the runtime import tied to the alias source
