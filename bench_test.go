package ensemblekit

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations for the design choices called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the figure's full computation per iteration at a
// reduced-but-steady scale (8 in situ steps, 1 trial) and reports the
// figure's headline quantity as a custom metric; cmd/experiments runs the
// full paper scale (37 steps, 5 trials) and prints the tables recorded in
// EXPERIMENTS.md.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"context"

	"ensemblekit/internal/campaign/pool"
	"ensemblekit/internal/chunk"
	"ensemblekit/internal/cluster"
	"ensemblekit/internal/experiments"
	"ensemblekit/internal/indicators"
	"ensemblekit/internal/kernels"
	"ensemblekit/internal/network"
	"ensemblekit/internal/obs"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/runtime"
	"ensemblekit/internal/scheduler"
	"ensemblekit/internal/sim"
	"ensemblekit/internal/telemetry"
	"ensemblekit/internal/telemetry/tracing"
)

func benchConfig() experiments.Config { return experiments.Quick() }

func BenchmarkTable1Metrics(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Configs(b *testing.B) {
	b.ReportAllocs()
	spec := Cori(3)
	for i := 0; i < b.N; i++ {
		for _, p := range placement.ConfigsTable2() {
			if err := p.Validate(spec); err != nil {
				b.Fatal(err)
			}
			for _, m := range p.Members {
				if _, err := indicators.CP(m); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkTable4Configs(b *testing.B) {
	b.ReportAllocs()
	spec := Cori(3)
	for i := 0; i < b.N; i++ {
		for _, p := range placement.ConfigsTable4() {
			if err := p.Validate(spec); err != nil {
				b.Fatal(err)
			}
			for _, m := range p.Members {
				if _, err := indicators.CP(m); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkFig3ComponentMetrics(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig3(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[len(rows)-1].LLCMissRatio, "C1.5-ana-missratio")
		}
	}
}

func BenchmarkFig4MemberMakespan(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig4(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[len(rows)-1].Makespan, "C1.5-member-makespan-s")
		}
	}
}

func BenchmarkFig5EnsembleMakespan(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[len(rows)-1].Makespan, "C1.5-makespan-s")
		}
	}
}

func BenchmarkFig6Timeline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7CoreSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig7(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			best, err := RecommendCores(points)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(best.Cores), "recommended-cores")
		}
	}
}

func BenchmarkFig8IndicatorStages(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig8(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Config == "C1.5" && r.Stage == "U,A,P" {
					b.ReportMetric(r.F, "F-C1.5-UAP")
				}
			}
		}
	}
}

func BenchmarkFig9IndicatorStages(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig9(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Config == "C2.8" && r.Stage == "U,A,P" {
					b.ReportMetric(r.F, "F-C2.8-UAP")
				}
			}
		}
	}
}

func BenchmarkHeadlineCoLocationGain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Headline(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Ratio, "best/worst-F")
		}
	}
}

// --- ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationDTLTiers compares the three staging tiers on the
// co-located configuration.
func BenchmarkAblationDTLTiers(b *testing.B) {
	b.ReportAllocs()
	spec := Cori(3)
	cfg := ConfigCc()
	es := SpecForPlacement(cfg, 8)
	for _, tier := range []string{runtime.TierDimes, runtime.TierBurstBuffer, runtime.TierPFS} {
		b.Run(tier, func(b *testing.B) {
			b.ReportAllocs()
			var makespan float64
			for i := 0; i < b.N; i++ {
				tr, err := RunSimulated(spec, cfg, es, SimOptions{Tier: tier})
				if err != nil {
					b.Fatal(err)
				}
				makespan = tr.Makespan()
			}
			b.ReportMetric(makespan, "makespan-s")
		})
	}
}

// BenchmarkAblationInterference quantifies what the interference model
// contributes: C1.4 with and without co-location degradation.
func BenchmarkAblationInterference(b *testing.B) {
	b.ReportAllocs()
	spec := Cori(3)
	cfg := placement.C14()
	es := SpecForPlacement(cfg, 8)
	off := cluster.NewModel(spec)
	off.Inter = &cluster.Interference{
		Dilation: map[cluster.Class]map[cluster.Class]float64{
			cluster.ClassCompute: {cluster.ClassCompute: 0, cluster.ClassMemory: 0},
			cluster.ClassMemory:  {cluster.ClassCompute: 0, cluster.ClassMemory: 0},
		},
		MissInflation: map[cluster.Class]map[cluster.Class]float64{
			cluster.ClassCompute: {cluster.ClassCompute: 0, cluster.ClassMemory: 0},
			cluster.ClassMemory:  {cluster.ClassCompute: 0, cluster.ClassMemory: 0},
		},
	}
	cases := []struct {
		name string
		opts SimOptions
	}{
		{"interference-on", SimOptions{}},
		{"interference-off", SimOptions{Model: off}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			var makespan float64
			for i := 0; i < b.N; i++ {
				tr, err := RunSimulated(spec, cfg, es, c.opts)
				if err != nil {
					b.Fatal(err)
				}
				makespan = tr.Makespan()
			}
			b.ReportMetric(makespan, "C1.4-makespan-s")
		})
	}
}

// BenchmarkAblationScheduler compares exhaustive search with the greedy
// heuristic on the paper instance.
func BenchmarkAblationScheduler(b *testing.B) {
	b.ReportAllocs()
	spec := Cori(3)
	es := PaperEnsemble("bench", 2, 1, 6)
	obj := scheduler.AnalyticObjective(spec, nil, es, indicators.StageUAP)
	b.Run("exhaustive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := scheduler.Exhaustive(spec, es, 3, obj); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("greedy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := scheduler.GreedyLocalSearch(spec, es, 3, obj); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRealBackend measures the real-execution path end to end.
func BenchmarkRealBackend(b *testing.B) {
	b.ReportAllocs()
	cfg := ConfigCc()
	opts := RealOptions{Steps: 2, Stride: 3}
	for i := 0; i < b.N; i++ {
		if _, err := RunReal(cfg, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChunkCodec measures the DTL plugin's marshaling throughput.
func BenchmarkChunkCodec(b *testing.B) {
	b.ReportAllocs()
	c := chunk.Synthetic(chunk.ID{Member: 0, Step: 0}, 8, 5000, 1)
	data, err := c.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := c.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := chunk.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDESEngine measures raw event throughput of the simulation
// engine.
func BenchmarkDESEngine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv()
		for p := 0; p < 10; p++ {
			env.Go("p", func(pr *sim.Proc) error {
				for k := 0; k < 1000; k++ {
					if err := pr.Wait(1); err != nil {
						return err
					}
				}
				return nil
			})
		}
		if err := env.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFabric measures contended transfer scheduling.
func BenchmarkFabric(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv()
		fab, err := network.NewFabric(env, network.Config{Nodes: 8, NICBandwidth: 8e9})
		if err != nil {
			b.Fatal(err)
		}
		for f := 0; f < 32; f++ {
			src, dst := f%8, (f+1)%8
			env.Go("xfer", func(p *sim.Proc) error {
				return fab.Transfer(p, src, dst, 1e9)
			})
		}
		if err := env.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionScaling runs the ensemble-size scaling study.
func BenchmarkExtensionScaling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ScalingStudy(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionHeterogeneous runs the heterogeneous-ensemble study.
func BenchmarkExtensionHeterogeneous(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.HeterogeneousStudy(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAnnealing compares the third search strategy against
// greedy on a 4-member instance.
func BenchmarkAblationAnnealing(b *testing.B) {
	b.ReportAllocs()
	spec := Cori(6)
	es := PaperEnsemble("anneal-bench", 4, 2, 6)
	obj := scheduler.AnalyticObjective(spec, nil, es, indicators.StageUAP)
	b.Run("greedy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := scheduler.GreedyLocalSearch(spec, es, 6, obj); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("anneal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := scheduler.Anneal(spec, es, 6, obj, scheduler.AnnealOptions{Iterations: 1000, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLJKernel measures the real MD force evaluation.
func BenchmarkLJKernel(b *testing.B) {
	b.ReportAllocs()
	sim, err := kernels.NewLJSimulator(kernels.DefaultLJConfig())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Advance(ctx, 5, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEigenKernel measures the real analysis kernel.
func BenchmarkEigenKernel(b *testing.B) {
	b.ReportAllocs()
	a, err := kernels.NewEigenAnalyzer(kernels.DefaultEigenConfig())
	if err != nil {
		b.Fatal(err)
	}
	c := chunk.Synthetic(chunk.ID{}, 2, 400, 1)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Analyze(ctx, c.Frames, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsOverhead quantifies the cost of the instrumentation layer on
// the simulated backend: "disabled" runs with a nil recorder (every emission
// site pays exactly one branch), "recording" runs with a live event bus.
// The disabled case must stay within noise (<2%) of a build without any
// instrumentation, which is the overhead guarantee documented in DESIGN.md.
func BenchmarkObsOverhead(b *testing.B) {
	b.ReportAllocs()
	spec := Cori(3)
	cfg := placement.C15()
	es := SpecForPlacement(cfg, 8)
	b.Run("disabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := RunSimulated(spec, cfg, es, SimOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recording", func(b *testing.B) {
		b.ReportAllocs()
		var events int
		for i := 0; i < b.N; i++ {
			rec := obs.NewRecorder(nil)
			if _, err := RunSimulated(spec, cfg, es, SimOptions{Recorder: rec}); err != nil {
				b.Fatal(err)
			}
			events = len(rec.Events())
		}
		b.ReportMetric(float64(events), "events/run")
	})
}

// BenchmarkLargeEnsembleDES measures the simulated backend at a scale far
// beyond the paper's experiments: 16 fully co-located members on 16
// nodes, 37 in situ steps.
func BenchmarkLargeEnsembleDES(b *testing.B) {
	b.ReportAllocs()
	const members = 16
	spec := Cori(members)
	p := Placement{Name: "large"}
	for i := 0; i < members; i++ {
		p.Members = append(p.Members, Member{
			Simulation: Component{Nodes: []int{i}, Cores: 16},
			Analyses:   []Component{{Nodes: []int{i}, Cores: 8}},
		})
	}
	es := SpecForPlacement(p, PaperSteps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := RunSimulated(spec, p, es, SimOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(tr.Makespan(), "makespan-s")
		}
	}
}

// BenchmarkCampaignSweep measures the campaign service against the serial
// path on the Table 2 sweep (3 seeds per configuration): serial
// RunSimulated, a pooled cold-cache service, and a warm-cache re-run.
func BenchmarkCampaignSweep(b *testing.B) {
	b.ReportAllocs()
	sweep := Sweep{
		Placements: ConfigsTable2(),
		Seeds:      []int64{1, 2, 3},
		Steps:      8,
	}
	cands, err := sweep.Jobs()
	if err != nil {
		b.Fatal(err)
	}

	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, c := range cands {
				for _, js := range c.Specs {
					opts := js.Sim.Options()
					opts.Faults = js.Faults
					if _, err := RunSimulated(js.Cluster, js.Placement, js.Ensemble, opts); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})

	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("pooled-%dw-cold", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				svc, err := NewService(ServiceConfig{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := RunCampaign(context.Background(), svc, sweep); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				svc.Close()
				b.StartTimer()
			}
		})
	}

	b.Run("pooled-4w-warm", func(b *testing.B) {
		b.ReportAllocs()
		svc, err := NewService(ServiceConfig{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		defer svc.Close()
		if _, err := RunCampaign(context.Background(), svc, sweep); err != nil {
			b.Fatal(err) // prime the cache outside the timed region
		}
		b.ResetTimer()
		var last *CampaignResult
		for i := 0; i < b.N; i++ {
			res, err := RunCampaign(context.Background(), svc, sweep)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.StopTimer()
		b.ReportMetric(float64(last.CacheHits)/float64(last.Jobs)*100, "hit-%")
	})

	// coldSweep is one timed cold-cache campaign per iteration under the
	// given service configuration.
	coldSweep := func(b *testing.B, sw Sweep, cfg ServiceConfig) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			svc, err := NewService(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := RunCampaign(context.Background(), svc, sw); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			svc.Close()
			b.StartTimer()
		}
	}

	// The fast path on the stock 8-step sweep: at this scale service
	// machinery (hashing, queueing, events) dominates, so the gain is
	// bounded; the -deep pair below isolates the execution-dominated
	// regime.
	b.Run("pooled-4w-cold-fastpath", func(b *testing.B) {
		coldSweep(b, sweep, ServiceConfig{Workers: 4, FastPath: true})
	})

	// The deep sweep stretches every job to 256 in situ steps so DES
	// execution, not service overhead, dominates the cold wall clock —
	// the regime long campaigns actually run in. The fast path answers
	// each job in closed form, flattening the per-step cost.
	deep := sweep
	deep.Steps = 256
	b.Run("pooled-4w-cold-deep", func(b *testing.B) {
		coldSweep(b, deep, ServiceConfig{Workers: 4})
	})
	b.Run("pooled-4w-cold-deep-fastpath", func(b *testing.B) {
		coldSweep(b, deep, ServiceConfig{Workers: 4, FastPath: true})
	})
}

// BenchmarkCampaignSweepParallelMembers measures member parallelism on a
// sweep of wide ensembles (16 node-disjoint members at paper-scale step
// counts): the joint path simulates all members on one event loop per
// job; the split path fans eligible members across cores and merges
// deterministically, composing with the service's job-level workers.
func BenchmarkCampaignSweepParallelMembers(b *testing.B) {
	b.ReportAllocs()
	const members = 16
	p := Placement{Name: "wide"}
	for i := 0; i < members; i++ {
		p.Members = append(p.Members, Member{
			Simulation: Component{Nodes: []int{i}, Cores: 16},
			Analyses:   []Component{{Nodes: []int{i}, Cores: 8}},
		})
	}
	sweep := Sweep{
		Placements: []Placement{p},
		Seeds:      []int64{1, 2, 3},
		Steps:      PaperSteps,
	}
	for _, degree := range []int{0, 4, members} {
		name := "joint"
		if degree > 0 {
			name = fmt.Sprintf("split-%d", degree)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				svc, err := NewService(ServiceConfig{Workers: 2, MemberParallelism: degree})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := RunCampaign(context.Background(), svc, sweep); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				svc.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkSteadyStateFastPath is the per-job comparison behind the
// campaign numbers: one fault-free paper-scale ensemble evaluated by the
// DES engine versus the closed-form steady-state evaluator. The fast
// path dispatches zero DES events; both produce bit-identical traces
// (TestFastPathBitIdentical).
func BenchmarkSteadyStateFastPath(b *testing.B) {
	p := ConfigC15()
	spec := Cori(3)
	es := SpecForPlacement(p, PaperSteps)

	b.Run("des", func(b *testing.B) {
		b.ReportAllocs()
		world := NewWorld()
		for i := 0; i < b.N; i++ {
			if _, _, err := RunSimulatedInfo(spec, p, es, SimOptions{World: world}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fastpath", func(b *testing.B) {
		b.ReportAllocs()
		world := NewWorld()
		for i := 0; i < b.N; i++ {
			_, info, err := RunSimulatedInfo(spec, p, es, SimOptions{World: world, FastPath: true})
			if err != nil {
				b.Fatal(err)
			}
			if !info.FastPath || info.DESEvents != 0 {
				b.Fatalf("fast path not taken (fastpath=%v, events=%d)", info.FastPath, info.DESEvents)
			}
		}
	})
}

// BenchmarkTelemetryOverhead measures the cost the metrics registry adds
// to the campaign service's hot path: a warm-cache sweep (pure service
// overhead — no simulation work) with instrumentation off (nil registry,
// the no-op path) and on. The two must stay within a few percent of each
// other; the delta is the per-job price of counters, histograms, and the
// event broadcaster.
func BenchmarkTelemetryOverhead(b *testing.B) {
	sweep := Sweep{
		Placements: ConfigsTable2(),
		Seeds:      []int64{1, 2, 3},
		Steps:      8,
	}
	run := func(b *testing.B, cfg ServiceConfig) {
		b.ReportAllocs()
		svc, err := NewService(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer svc.Close()
		if _, err := RunCampaign(context.Background(), svc, sweep); err != nil {
			b.Fatal(err) // prime the cache outside the timed region
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := RunCampaign(context.Background(), svc, sweep); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("noop", func(b *testing.B) {
		run(b, ServiceConfig{Workers: 4})
	})
	b.Run("instrumented", func(b *testing.B) {
		run(b, ServiceConfig{Workers: 4, Metrics: telemetry.NewRegistry()})
	})
}

// BenchmarkTracingOverhead is BenchmarkTelemetryOverhead for the span
// layer: the same warm-cache sweep with no tracer (every span call is
// the nil no-op) and with a live tracer recording job spans into a
// bounded store. The delta is the per-job price of span allocation,
// attribute stamping, and store insertion on the service's hot path —
// the number DESIGN.md's "tracing is free when off" claim rests on.
func BenchmarkTracingOverhead(b *testing.B) {
	sweep := Sweep{
		Placements: ConfigsTable2(),
		Seeds:      []int64{1, 2, 3},
		Steps:      8,
	}
	run := func(b *testing.B, cfg ServiceConfig) {
		b.ReportAllocs()
		svc, err := NewService(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer svc.Close()
		if _, err := RunCampaign(context.Background(), svc, sweep); err != nil {
			b.Fatal(err) // prime the cache outside the timed region
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := RunCampaign(context.Background(), svc, sweep); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("noop", func(b *testing.B) {
		run(b, ServiceConfig{Workers: 4})
	})
	b.Run("traced", func(b *testing.B) {
		run(b, ServiceConfig{Workers: 4,
			Tracer: tracing.NewTracer(tracing.NewStore(256, 4096))})
	})
}

// BenchmarkRingRoute measures the fabric's per-job routing decision:
// one consistent-hash Owner lookup per submission. The ring is immutable
// and rebuilt only on membership change, so routing must stay a pure
// hash + binary search with zero allocations — this is on the submit
// path of every pooled job.
func BenchmarkRingRoute(b *testing.B) {
	for _, n := range []int{3, 16} {
		b.Run(fmt.Sprintf("%dnodes", n), func(b *testing.B) {
			ids := make([]string, n)
			for i := range ids {
				ids[i] = fmt.Sprintf("node-%d", i+1)
			}
			ring := pool.NewRing(ids, 0)
			keys := make([]string, 1024)
			for i := range keys {
				keys[i] = fmt.Sprintf("%064x", uint64(i)*2654435761)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if ring.Owner(keys[i%len(keys)]) == "" {
					b.Fatal("empty owner")
				}
			}
		})
	}
}

// benchPoolLocal is a canned Local for the forwarding benchmark: the
// peer protocol cost is what is being measured, not an execution.
type benchPoolLocal struct {
	cached []byte
	result []byte
}

func (l *benchPoolLocal) CachedResultJSON(hash string) ([]byte, bool) {
	return l.cached, l.cached != nil
}

func (l *benchPoolLocal) ExecuteForwardedJSON(ctx context.Context, specJSON []byte, label string) ([]byte, error) {
	return l.result, nil
}

func (l *benchPoolLocal) SubmitJSON(specJSON []byte, label string, priority int) error {
	return nil
}

func (l *benchPoolLocal) NodeAccountingJSON() []byte { return []byte(`{}`) }

// BenchmarkPoolForward prices the fabric's two wire operations between
// a real two-node loopback pool: a forwarded execution round-trip
// (spec JSON out, result JSON back) and a fleet-cache lookup hit. Both
// ride one HTTP request, so this is the floor a peer-owned job pays
// over running locally.
func BenchmarkPoolForward(b *testing.B) {
	newNode := func(id string, seeds []string, local pool.Local) (*pool.Pool, *httptest.Server) {
		var h atomic.Pointer[http.Handler]
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if hp := h.Load(); hp != nil {
				(*hp).ServeHTTP(w, r)
				return
			}
			http.NotFound(w, r)
		}))
		p, err := pool.New(pool.Config{
			SelfID:    id,
			Advertise: ts.URL,
			Join:      seeds,
			Heartbeat: 10 * time.Millisecond,
			Local:     local,
		})
		if err != nil {
			b.Fatal(err)
		}
		handler := p.Handler()
		h.Store(&handler)
		p.Start()
		return p, ts
	}
	res := []byte(`{"objective":1.25,"hash":"bench"}`)
	p1, ts1 := newNode("n1", nil, &benchPoolLocal{result: res})
	defer p1.Close()
	defer ts1.Close()
	p2, ts2 := newNode("n2", []string{ts1.URL}, &benchPoolLocal{cached: res, result: res})
	defer p2.Close()
	defer ts2.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		alive := 0
		for _, pi := range p1.Peers() {
			if pi.State == pool.StateAlive {
				alive++
			}
		}
		if alive == 2 {
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("pool never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}

	spec := []byte(`{"bench":true}`)
	b.Run("execute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p1.Execute(context.Background(), "n2", "h", spec, "bench"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cache-lookup", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok, err := p1.Lookup(context.Background(), "n2", "h"); err != nil || !ok {
				b.Fatalf("lookup ok=%v err=%v", ok, err)
			}
		}
	})
}
