module ensemblekit

go 1.22
