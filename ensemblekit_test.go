package ensemblekit

import (
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	cfg := ConfigC15()
	spec := Cori(3)
	es := SpecForPlacement(cfg, 8)
	tr, err := RunSimulated(spec, cfg, es, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	effs, err := Efficiencies(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(effs) != 2 {
		t.Fatalf("efficiencies = %v", effs)
	}
	for _, e := range effs {
		if e <= 0 || e > 1 {
			t.Errorf("E = %v outside (0,1]", e)
		}
	}
	f, err := Objective(cfg, effs, StageUAP)
	if err != nil {
		t.Fatal(err)
	}
	if f <= 0 {
		t.Errorf("F = %v, want positive", f)
	}
	rep, err := IndicatorsReport(cfg, effs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerStage["U,A,P"] != f {
		t.Error("report and objective disagree")
	}
	ss, err := MemberSteadyState(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Sigma() <= 0 {
		t.Error("non-positive sigma")
	}
	if _, err := MemberSteadyState(tr, 9); err == nil {
		t.Error("out-of-range member should fail")
	}
}

func TestFacadeConfigs(t *testing.T) {
	if len(ConfigsTable2()) != 7 || len(ConfigsTable4()) != 8 {
		t.Error("config tables incomplete")
	}
	if _, ok := ConfigByName("C1.5"); !ok {
		t.Error("C1.5 should resolve")
	}
	if ConfigCf().Name != "C_f" || ConfigCc().Name != "C_c" {
		t.Error("elementary configs misnamed")
	}
	cp, err := PlacementIndicator(ConfigC15().Members[0])
	if err != nil || cp != 1 {
		t.Errorf("CP(C1.5 member) = %v, %v; want 1", cp, err)
	}
}

func TestFacadeSweepAndSchedule(t *testing.T) {
	points, err := CoreSweep(Cori(2), []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	best, err := RecommendCores(points)
	if err != nil {
		t.Fatal(err)
	}
	if best.Cores != 8 {
		t.Errorf("recommended %d cores, want 8", best.Cores)
	}
	res, err := SchedulePlacement(Cori(3), PaperEnsemble("s", 2, 1, 6), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.Key() != ConfigC15().Key() {
		t.Errorf("scheduler best = %s, want the C1.5 pattern", res.Placement)
	}
	gr, err := SchedulePlacementGreedy(Cori(3), PaperEnsemble("s", 2, 1, 6), 3)
	if err != nil {
		t.Fatal(err)
	}
	if gr.Score < res.Score-1e-12 {
		t.Errorf("greedy (%v) below exhaustive (%v)", gr.Score, res.Score)
	}
}

func TestFacadeRealBackend(t *testing.T) {
	opts := RealOptions{Steps: 2, Stride: 3, Timeout: 30 * time.Second}
	tr, err := RunReal(ConfigCc(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Backend != "real" || len(tr.Members) != 1 {
		t.Errorf("unexpected real trace: %s, %d members", tr.Backend, len(tr.Members))
	}
}

func TestAnalysisFacade(t *testing.T) {
	cfg := ConfigC15()
	tr, err := RunSimulated(Cori(3), cfg, SpecForPlacement(cfg, 8), SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ss, warm, err := AutoSteadyState(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Sigma() <= 0 || warm < 0 {
		t.Errorf("auto steady state: sigma=%v warm=%d", ss.Sigma(), warm)
	}
	if _, _, err := AutoSteadyState(tr, 99); err == nil {
		t.Error("out-of-range member should fail")
	}
	stragglers, err := StragglersOf(tr, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(stragglers) != 0 {
		t.Errorf("symmetric ensemble should have no stragglers: %+v", stragglers)
	}
	grad, err := EfficiencySensitivity(cfg, []float64{0.7, 0.95}, StageUAP)
	if err != nil {
		t.Fatal(err)
	}
	if len(grad) != 2 || grad[0] <= grad[1] {
		t.Errorf("sensitivity should favour the straggler: %v", grad)
	}
	points, err := ProvisioningGrid(Cori(2), GridOptions{Strides: []int{800, 1600}, Cores: []int{8}})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("grid = %v", points)
	}
	best, err := BestThroughput(points)
	if err != nil {
		t.Fatal(err)
	}
	if best.Stride == 0 {
		t.Error("no best point")
	}
	res, err := SchedulePlacementAnneal(Cori(3), PaperEnsemble("a", 2, 1, 6), 3, AnnealOptions{Iterations: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.Key() != ConfigC15().Key() {
		t.Errorf("annealing should find the C1.5 pattern, got %s", res.Placement)
	}
}
