package ensemblekit

import (
	"fmt"

	"ensemblekit/internal/kernels"
)

// MDProfile returns the calibrated GROMACS-proxy simulation profile for a
// stride (MD steps per in situ step); stride <= 0 uses the paper's 800.
func MDProfile(stride int) Profile { return kernels.MDProfile(stride) }

// AnalysisProfile returns the calibrated eigenvalue-analysis profile.
func AnalysisProfile() Profile { return kernels.AnalysisProfile() }

// ScaledAnalysisProfile scales the analysis cost (1 = calibrated).
func ScaledAnalysisProfile(scale float64) Profile { return kernels.ScaledAnalysisProfile(scale) }

func errOutOfRange(i, n int) error {
	return fmt.Errorf("ensemblekit: member index %d out of range [0,%d)", i, n)
}
