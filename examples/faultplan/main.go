// Faultplan: run an ensemble under a declarative fault scenario and a
// resilience policy, then assess the survivors with the paper's
// indicators.
//
// plan.json in this directory is the documented example scenario; every
// field is optional and unknown fields are rejected on load:
//
//   - "seed": drives every random draw — the same plan and seed inject
//     identical faults, so runs (and their traces) are reproducible.
//   - "staging": per-tier staging-operation failures, either a random
//     per-operation "rate" (within an optional [start,end) virtual-time
//     window) or a deterministic "failAtOp" (fail the n-th operation).
//   - "network": bandwidth-degradation windows; "factor" 0.25 scales
//     every link capacity to a quarter between "start" and "end".
//   - "crashes": node crashes — every component on "node" is interrupted
//     at virtual time "at".
//   - "stragglers": compute slowdown windows; "component" matches trace
//     names ("m0.sim", "m1.*", "*"), "factor" 1.5 = 50% slower.
//
// The same plan drives both backends via ensemblectl:
//
//	ensemblectl -config C1.5 -faults plan.json -degrade drop \
//	            -retries 3 -retry-backoff 0.05 -restarts 1
package main

import (
	"fmt"
	"log"
	"os"

	"ensemblekit"
)

func main() {
	f, err := os.Open("plan.json")
	if err != nil {
		log.Fatal(err)
	}
	plan, err := ensemblekit.ReadFaultPlan(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	// The paper's best placement on a 3-node Cori-like machine, but with
	// the fault plan injected and a recovery policy around it: transient
	// staging failures retry up to 3 times with exponential backoff, each
	// component may restart once after a crash, and members whose budget
	// runs out are dropped rather than aborting the ensemble.
	cfg := ensemblekit.ConfigC15()
	spec := ensemblekit.Cori(3)
	es := ensemblekit.SpecForPlacement(cfg, ensemblekit.PaperSteps)
	tr, err := ensemblekit.RunSimulated(spec, cfg, es, ensemblekit.SimOptions{
		Seed:   1,
		Faults: plan,
		Resilience: ensemblekit.Resilience{
			StagingRetries: 3,
			RetryBackoff:   0.05,
			RestartLimit:   1,
			RestartDelay:   1,
			Mode:           ensemblekit.DropMember,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scenario %q: makespan %.1f s, %d/%d members survived\n",
		plan.Name, tr.Makespan(), len(tr.SurvivingMembers()), len(tr.Members))
	for _, i := range tr.DroppedMembers() {
		fmt.Printf("  member %d dropped\n", i+1)
	}

	// Eq. 9 over the survivors only: dropped members contribute neither
	// efficiency nor resource shares.
	surviving, effs, err := ensemblekit.SurvivingEfficiencies(cfg, tr)
	if err != nil {
		log.Fatal(err)
	}
	if len(effs) == 0 {
		fmt.Println("no survivors — nothing to assess")
		return
	}
	obj, err := ensemblekit.Objective(surviving, effs, ensemblekit.StageUAP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("F(P^{U,A,P}) over survivors = %.5f\n", obj)
}
