// provisioning explores the joint question the paper's Section 3.4 calls
// intractable and sidesteps by fixing the simulation settings: which
// simulation stride AND which analysis core allocation together make the
// best use of the machine? The analytic model evaluates the whole
// (stride, cores) grid in microseconds; the sensitivity analysis then
// shows which ensemble member deserves tuning attention.
package main

import (
	"fmt"
	"log"

	"ensemblekit"
)

func main() {
	spec := ensemblekit.Cori(2)

	// Joint (stride, cores) sweep with a one-hour wall-clock budget.
	points, err := ensemblekit.ProvisioningGrid(spec, ensemblekit.GridOptions{
		MakespanBudget: 3600,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("stride  cores  sigma(s)  E      Eq.4   MD-steps/hour")
	for _, p := range points {
		if p.Cores != 4 && p.Cores != 8 && p.Cores != 16 {
			continue // keep the printout focused
		}
		fmt.Printf("%-7d %-6d %-9.2f %-6.3f %-6v %d\n",
			p.Stride, p.Cores, p.Sigma, p.Efficiency, p.SatisfiesEq4,
			p.StepsForBudget*p.Stride)
	}
	best, err := ensemblekit.BestThroughput(points)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest throughput: stride %d with %d analysis cores (%.0f MD steps/s, E=%.3f)\n",
		best.Stride, best.Cores, float64(best.Stride)/best.Sigma, best.Efficiency)

	// Sensitivity: with one member lagging, where does tuning effort pay?
	cfg := ensemblekit.ConfigC15()
	effs := []float64{0.78, 0.95} // member 1 is the straggler
	grad, err := ensemblekit.EfficiencySensitivity(cfg, effs, ensemblekit.StageUAP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsensitivity of F(P^{U,A,P}) to each member's efficiency:")
	for i, g := range grad {
		fmt.Printf("member %d (E=%.2f): dF/dE = %.5f\n", i+1, effs[i], g)
	}
	fmt.Println("the straggler dominates: Equation 9's variance penalty concentrates")
	fmt.Println("the payoff on the slowest member, which also bounds the makespan.")
}
