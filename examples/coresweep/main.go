// coresweep reproduces the paper's Section 3.4 provisioning heuristic
// (Figure 7): with the simulation fixed at 16 cores, how many cores should
// each in situ analysis get? Sweep the count, find where the analysis
// stops throttling the simulation (Equation 4), and pick the allocation
// that maximizes the computational efficiency E.
package main

import (
	"fmt"
	"log"

	"ensemblekit"
)

func main() {
	spec := ensemblekit.Cori(2)
	counts := []int{1, 2, 4, 8, 16, 24, 32}

	points, err := ensemblekit.CoreSweep(spec, counts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("analysis cores vs in situ step (fixed 16-core simulation):")
	fmt.Printf("%-6s  %-10s  %-10s  %-10s  %-7s  %s\n",
		"cores", "S*+W* (s)", "R*+A* (s)", "sigma (s)", "E", "Eq.4")
	for _, p := range points {
		fmt.Printf("%-6d  %-10.2f  %-10.2f  %-10.2f  %-7.3f  %v\n",
			p.Cores, p.SimBusy, p.AnaBusy, p.Sigma, p.Efficiency, p.SatisfiesEq4)
	}

	best, err := ensemblekit.RecommendCores(points)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecommended allocation: %d cores per analysis (E = %.3f)\n", best.Cores, best.Efficiency)
	fmt.Println("the paper reaches the same conclusion: 8 cores minimize the makespan")
	fmt.Println("while maximizing efficiency (the smallest idle time).")
}
