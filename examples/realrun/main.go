// realrun executes a workflow ensemble for real on the local machine: a
// genuine Lennard-Jones molecular-dynamics simulation produces frames,
// chunks are serialized through the in-memory staging area with the
// paper's synchronous no-buffering protocol, and a genuine power-iteration
// analysis extracts the largest eigenvalue of each frame's bipartite
// contact matrix as a collective variable. Wall-clock stage timings feed
// the same efficiency model as the simulated backend.
package main

import (
	"fmt"
	"log"
	"time"

	"ensemblekit"
)

func main() {
	cfg := ensemblekit.ConfigC15() // two members, each sim+analysis

	trace, err := ensemblekit.RunReal(cfg, ensemblekit.RealOptions{
		Steps:   4,  // in situ steps
		Stride:  25, // MD steps per chunk
		Timeout: 2 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("real execution of %s: ensemble makespan %.3f s\n", cfg.Name, trace.Makespan())
	for i, m := range trace.Members {
		ss, err := ensemblekit.MemberSteadyState(trace, i)
		if err != nil {
			log.Fatal(err)
		}
		e, err := ss.Efficiency()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("member %d: %d steps, sigma=%.4f s, E=%.3f\n",
			i+1, len(m.Simulation.Steps), ss.Sigma(), e)
		for j := range m.Analyses {
			sc, err := ss.CouplingScenario(j)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  coupling %d: %v\n", j+1, sc)
		}
	}
	fmt.Println("\nthe same trace format, efficiency model and indicators apply to")
	fmt.Println("real executions and simulated ones — only the backend differs.")
}
