// Example campaign evaluates the paper's Table 2 configurations through
// the campaign service: jobs fan out over a worker pool, identical
// submissions are deduplicated, and a re-run is answered entirely from
// the content-addressed result cache.
package main

import (
	"context"
	"fmt"
	"log"

	"ensemblekit"
)

func main() {
	svc, err := ensemblekit.NewService(ensemblekit.ServiceConfig{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	sweep := ensemblekit.Sweep{
		Name:       "table2",
		Placements: ensemblekit.ConfigsTable2(),
		Steps:      8,
		Seeds:      []int64{1, 2, 3}, // three trials, averaged
	}

	res, err := ensemblekit.RunCampaign(context.Background(), svc, sweep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("F(P^{U,A,P}) ranking over Table 2:")
	for i, r := range res.Ranking {
		fmt.Printf("  %d. %-5s F = %.4f\n", i+1, r.Name, r.Value)
	}

	// The second run costs nothing: every job hash is already cached.
	if _, err := ensemblekit.RunCampaign(context.Background(), svc, sweep); err != nil {
		log.Fatal(err)
	}
	st := svc.Stats()
	fmt.Printf("cache: %d hits, %d misses (hit rate %.0f%%)\n",
		st.CacheHits, st.CacheMisses, 100*st.HitRate())
}
