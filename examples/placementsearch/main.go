// placementsearch demonstrates the paper's future-work direction:
// scheduling the components of a workflow ensemble under resource
// constraints by maximizing the performance indicator. It searches
// placements for a four-member ensemble on six nodes, exhaustively where
// tractable and with the greedy hill-climber where not.
package main

import (
	"fmt"
	"log"
	"time"

	"ensemblekit"
)

func main() {
	spec := ensemblekit.Cori(6)
	// Four members, each one simulation plus two analyses: 16 components,
	// exactly fitting four nodes when fully co-located (16+8+8 = 32).
	workload := ensemblekit.PaperEnsemble("search-demo", 4, 2, 8)

	start := time.Now()
	greedy, err := ensemblekit.SchedulePlacementGreedy(spec, workload, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy search: F = %.5f after %d evaluations (%.2fs)\n",
		greedy.Score, greedy.Evaluated, time.Since(start).Seconds())
	fmt.Println(greedy.Placement.String())

	for i, m := range greedy.Placement.Members {
		cp, err := ensemblekit.PlacementIndicator(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("member %d: CP = %.2f\n", i+1, cp)
	}

	// A smaller instance where exhaustive search is tractable, to show
	// the greedy result is not a fluke: both must find the fully
	// co-located optimum.
	small := ensemblekit.PaperEnsemble("small", 2, 1, 8)
	ex, err := ensemblekit.SchedulePlacement(ensemblekit.Cori(3), small, 3)
	if err != nil {
		log.Fatal(err)
	}
	gr, err := ensemblekit.SchedulePlacementGreedy(ensemblekit.Cori(3), small, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsmall instance: exhaustive F = %.5f (%d evals), greedy F = %.5f (%d evals)\n",
		ex.Score, ex.Evaluated, gr.Score, gr.Evaluated)
	if ex.Placement.Key() == ensemblekit.ConfigC15().Key() {
		fmt.Println("exhaustive optimum is the paper's C1.5 pattern: full coupling co-location.")
	}
}
