// mdensemble evaluates a molecular-dynamics workflow ensemble — two
// members, each one simulation coupled with two analyses — across every
// placement of the paper's Table 4 (C2.1-C2.8), and ranks the placements
// with the multi-stage performance indicator. This is the paper's
// Section 5.2 study as a library user would run it.
package main

import (
	"fmt"
	"log"
	"sort"

	"ensemblekit"
)

func main() {
	spec := ensemblekit.Cori(3)

	type result struct {
		name     string
		makespan float64
		f        float64
	}
	var results []result

	for _, cfg := range ensemblekit.ConfigsTable4() {
		workload := ensemblekit.SpecForPlacement(cfg, ensemblekit.PaperSteps)
		trace, err := ensemblekit.RunSimulated(spec, cfg, workload, ensemblekit.SimOptions{
			Jitter: 0.02, Seed: 1,
		})
		if err != nil {
			log.Fatalf("%s: %v", cfg.Name, err)
		}
		effs, err := ensemblekit.Efficiencies(trace)
		if err != nil {
			log.Fatalf("%s: %v", cfg.Name, err)
		}
		f, err := ensemblekit.Objective(cfg, effs, ensemblekit.StageUAP)
		if err != nil {
			log.Fatalf("%s: %v", cfg.Name, err)
		}
		results = append(results, result{name: cfg.Name, makespan: trace.Makespan(), f: f})
	}

	sort.Slice(results, func(i, j int) bool { return results[i].f > results[j].f })
	fmt.Println("Table 4 placements ranked by F(P^{U,A,P}) (higher is better):")
	fmt.Printf("%-6s  %-14s  %s\n", "config", "makespan (s)", "F")
	for _, r := range results {
		fmt.Printf("%-6s  %-14.1f  %.5f\n", r.name, r.makespan, r.f)
	}
	fmt.Printf("\nbest placement: %s — the fully co-located configuration,\n", results[0].name)
	fmt.Println("confirming the paper's conclusion that coupled components belong together.")
}
