// Quickstart: execute one workflow ensemble on the simulated platform and
// assess it with the paper's efficiency model and performance indicators.
package main

import (
	"fmt"
	"log"

	"ensemblekit"
)

func main() {
	// The paper's best placement (Table 2, C1.5): two ensemble members,
	// each a 16-core MD simulation co-located with its 8-core analysis.
	cfg := ensemblekit.ConfigC15()

	// A 3-node Cori-like machine and the paper's workload: stride-800
	// GROMACS-proxy simulations coupled with eigenvalue analyses, 37 in
	// situ steps (30,000 MD steps).
	spec := ensemblekit.Cori(3)
	workload := ensemblekit.SpecForPlacement(cfg, ensemblekit.PaperSteps)

	trace, err := ensemblekit.RunSimulated(spec, cfg, workload, ensemblekit.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("configuration %s: ensemble makespan %.1f s\n", cfg.Name, trace.Makespan())

	// The efficiency model (Equations 1-3): steady-state stages, the
	// non-overlapped in situ step, and the computational efficiency E.
	for i := range trace.Members {
		ss, err := ensemblekit.MemberSteadyState(trace, i)
		if err != nil {
			log.Fatal(err)
		}
		e, err := ss.Efficiency()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("member %d: sigma=%.2f s, E=%.3f, Eq.4 satisfied=%v\n",
			i+1, ss.Sigma(), e, ss.SatisfiesEq4())
	}

	// The performance indicators (Equations 5-9) aggregate efficiency,
	// placement and provisioning into one objective F — higher is better.
	effs, err := ensemblekit.Efficiencies(trace)
	if err != nil {
		log.Fatal(err)
	}
	f, err := ensemblekit.Objective(cfg, effs, ensemblekit.StageUAP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("F(P^{U,A,P}) = %.5f\n", f)
}
