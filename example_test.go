package ensemblekit_test

import (
	"fmt"
	"log"

	"ensemblekit"
)

// ExampleRunSimulated executes the paper's best placement on the simulated
// platform and computes the full performance indicator.
func ExampleRunSimulated() {
	cfg := ensemblekit.ConfigC15()
	spec := ensemblekit.Cori(3)
	workload := ensemblekit.SpecForPlacement(cfg, 8)

	tr, err := ensemblekit.RunSimulated(spec, cfg, workload, ensemblekit.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	effs, err := ensemblekit.Efficiencies(tr)
	if err != nil {
		log.Fatal(err)
	}
	f, err := ensemblekit.Objective(cfg, effs, ensemblekit.StageUAP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("members: %d, F(P^{U,A,P}) = %.4f\n", len(tr.Members), f)
	// Output: members: 2, F(P^{U,A,P}) = 0.0199
}

// ExamplePlacementIndicator shows the placement indicator CP (Equation 6)
// for a co-located and a spread member.
func ExamplePlacementIndicator() {
	co := ensemblekit.ConfigCc().Members[0]
	spread := ensemblekit.ConfigCf().Members[0]
	cpCo, err := ensemblekit.PlacementIndicator(co)
	if err != nil {
		log.Fatal(err)
	}
	cpSpread, err := ensemblekit.PlacementIndicator(spread)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("co-located CP = %.1f, spread CP = %.1f\n", cpCo, cpSpread)
	// Output: co-located CP = 1.0, spread CP = 0.5
}

// ExampleMemberSteadyState extracts the efficiency model's quantities from
// an execution.
func ExampleMemberSteadyState() {
	cfg := ensemblekit.ConfigCf()
	tr, err := ensemblekit.RunSimulated(ensemblekit.Cori(2), cfg,
		ensemblekit.SpecForPlacement(cfg, 8), ensemblekit.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ss, err := ensemblekit.MemberSteadyState(tr, 0)
	if err != nil {
		log.Fatal(err)
	}
	e, err := ss.Efficiency()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Eq.4 satisfied: %v, E = %.2f\n", ss.SatisfiesEq4(), e)
	// Output: Eq.4 satisfied: true, E = 0.96
}

// ExampleSchedulePlacement searches for the best placement of a
// two-member ensemble — it rediscovers the paper's C1.5 pattern.
func ExampleSchedulePlacement() {
	res, err := ensemblekit.SchedulePlacement(
		ensemblekit.Cori(3), ensemblekit.PaperEnsemble("demo", 2, 1, 6), 3)
	if err != nil {
		log.Fatal(err)
	}
	cp, err := ensemblekit.PlacementIndicator(res.Placement.Members[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal member CP = %.1f, nodes used = %d\n", cp, res.Placement.M())
	// Output: optimal member CP = 1.0, nodes used = 2
}
