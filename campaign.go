package ensemblekit

import (
	"context"

	"ensemblekit/internal/campaign"
)

// Campaign service: the concurrent ensemble-evaluation engine — a bounded
// worker pool fed by a priority job queue, fronted by a content-addressed
// result cache with singleflight deduplication. Build one with NewService,
// submit JobSpecs (or whole Sweeps via RunCampaign), and share the cache
// across searches, experiments, and the cmd/ensembled HTTP server.
type (
	// ServiceConfig sizes the campaign service.
	ServiceConfig = campaign.Config
	// Service is the concurrent evaluation engine.
	Service = campaign.Service
	// JobSpec is the canonical, content-addressable description of one
	// simulated ensemble run.
	JobSpec = campaign.JobSpec
	// Job is a submitted evaluation (Wait for its JobResult).
	Job = campaign.Job
	// JobResult is a completed evaluation: trace, efficiencies, report.
	JobResult = campaign.Result
	// SubmitOptions label and order a submission.
	SubmitOptions = campaign.SubmitOptions
	// ServiceStats snapshots the service's counters (cache hit rate,
	// queue depth, worker activity).
	ServiceStats = campaign.Stats
	// Sweep is a campaign: placements × member counts × fault plans ×
	// node counts × seeds.
	Sweep = campaign.Sweep
	// CampaignResult aggregates a finished campaign, including the F(P)
	// ranking (Eq. 9).
	CampaignResult = campaign.CampaignResult
	// SimConfig is the serializable subset of SimOptions that makes runs
	// content-addressable.
	SimConfig = campaign.SimConfig
)

// Service errors.
var (
	// ErrQueueFull reports that Submit hit the bounded queue's capacity.
	ErrQueueFull = campaign.ErrQueueFull
	// ErrServiceClosed reports a submission after Close.
	ErrServiceClosed = campaign.ErrClosed
)

// NewService starts a campaign service. Callers must Close it.
func NewService(cfg ServiceConfig) (*Service, error) { return campaign.NewService(cfg) }

// NewJobSpec builds a content-addressable job from the familiar
// RunSimulated arguments, growing the machine to fit the placement.
func NewJobSpec(spec ClusterSpec, p Placement, es EnsembleSpec, opts SimOptions) (JobSpec, error) {
	return campaign.NewJob(spec, p, es, opts)
}

// Submit enqueues a job on the service (non-blocking backpressure:
// ErrQueueFull when the queue is at capacity).
func Submit(ctx context.Context, svc *Service, spec JobSpec, opts SubmitOptions) (*Job, error) {
	return svc.Submit(ctx, spec, opts)
}

// RunCampaign expands a sweep over the service's worker pool and
// aggregates the results into the paper's indicator ranking.
func RunCampaign(ctx context.Context, svc *Service, sw Sweep) (*CampaignResult, error) {
	return campaign.RunCampaign(ctx, svc, sw)
}
