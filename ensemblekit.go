// Package ensemblekit is a framework for executing and assessing ensembles
// of in situ scientific workflows, reproducing "Assessing Resource
// Provisioning and Allocation of Ensembles of In Situ Workflows" (Do,
// Pottier, Ferreira da Silva, Caíno-Lores, Taufer, Deelman — ICPP
// Workshops 2021).
//
// A workflow ensemble is a set of members running concurrently, each
// coupling one simulation with K analyses through in-memory data staging.
// ensemblekit provides:
//
//   - a runtime that executes ensembles either on a simulated HPC platform
//     (cluster, interference and interconnect models in the style of Cori)
//     or for real (Lennard-Jones MD + eigenvalue analyses as goroutines
//     over an in-memory DTL);
//   - the paper's efficiency model — non-overlapped in situ steps σ̄*,
//     makespan prediction, computational efficiency E (Equations 1-3);
//   - the multi-stage performance indicators P^U, P^{U,A}, P^{U,A,P} and
//     the ensemble objective F = mean − stddev (Equations 5-9);
//   - the Section 3.4 provisioning heuristic, an indicator-driven
//     placement scheduler, and a benchmark harness regenerating every
//     table and figure of the paper's evaluation.
//
// Quickstart:
//
//	cfg := ensemblekit.ConfigC15()                    // Table 2's best placement
//	spec := ensemblekit.Cori(3)                       // 3 Cori-like nodes
//	es := ensemblekit.SpecForPlacement(cfg, 37)       // the paper's workload
//	tr, err := ensemblekit.RunSimulated(spec, cfg, es, ensemblekit.SimOptions{})
//	...
//	effs, _ := ensemblekit.Efficiencies(tr)
//	f, _ := ensemblekit.Objective(cfg, effs, ensemblekit.StageUAP)
package ensemblekit

import (
	"io"

	"ensemblekit/internal/cluster"
	"ensemblekit/internal/core"
	"ensemblekit/internal/faults"
	"ensemblekit/internal/heuristic"
	"ensemblekit/internal/indicators"
	"ensemblekit/internal/placement"
	"ensemblekit/internal/runtime"
	"ensemblekit/internal/scheduler"
	"ensemblekit/internal/trace"
)

// Hardware and workload specification.
type (
	// ClusterSpec describes the simulated machine.
	ClusterSpec = cluster.Spec
	// Profile is a component's resource-usage profile.
	Profile = cluster.Profile
	// EnsembleSpec is a workflow ensemble's workload.
	EnsembleSpec = runtime.EnsembleSpec
	// MemberSpec is one member's workload.
	MemberSpec = runtime.MemberSpec
	// SimOptions configures the simulated backend.
	SimOptions = runtime.SimOptions
	// RealOptions configures the real-execution backend.
	RealOptions = runtime.RealOptions
)

// Placement types (the paper's Tables 2-4 notation).
type (
	// Placement maps every ensemble component to node indexes.
	Placement = placement.Placement
	// Member is one member's placement.
	Member = placement.Member
	// Component is one component's placement.
	Component = placement.Component
)

// Model and indicator types.
type (
	// SteadyState holds a member's steady-state stage durations.
	SteadyState = core.SteadyState
	// Coupling is one (Sim, Ana^i) pair's steady-state stages.
	Coupling = core.Coupling
	// StageSet selects the indicator refinement layers.
	StageSet = indicators.StageSet
	// IndicatorReport holds a configuration's objective at every stage.
	IndicatorReport = indicators.Report
	// EnsembleTrace is an execution record.
	EnsembleTrace = trace.EnsembleTrace
	// SweepPoint is one measurement of the Section 3.4 core sweep.
	SweepPoint = heuristic.SweepPoint
	// ScheduleResult is a placement-search outcome.
	ScheduleResult = scheduler.Result
)

// Fault injection and resilience (both backends).
type (
	// FaultPlan is a declarative, seeded fault-injection plan.
	FaultPlan = faults.Plan
	// StagingFault injects staging-operation failures.
	StagingFault = faults.StagingFault
	// NodeCrash crashes a node at a virtual time.
	NodeCrash = faults.NodeCrash
	// NetworkWindow degrades interconnect capacity over a time window.
	NetworkWindow = faults.NetworkWindow
	// StragglerFault dilates a component's compute stages over a window
	// (named to avoid colliding with the metrics Straggler report type).
	StragglerFault = faults.Straggler
	// Resilience is the recovery policy applied around a fault plan.
	Resilience = runtime.Resilience
	// DegradationMode selects behaviour once recovery is exhausted.
	DegradationMode = runtime.DegradationMode
)

// Degradation modes.
const (
	// FailFast aborts the ensemble on the first unrecovered failure.
	FailFast = runtime.FailFast
	// DropMember drops the failed member and completes the survivors.
	DropMember = runtime.DropMember
)

// ReadFaultPlan decodes and validates a JSON fault plan (see
// examples/faultplan/plan.json for the format).
func ReadFaultPlan(r io.Reader) (*FaultPlan, error) { return faults.ReadJSON(r) }

// SurvivingEfficiencies extracts E_i for the members that survived the
// run (dropped members excluded) along with the filtered placement to
// aggregate them over (Eq. 9 over survivors).
func SurvivingEfficiencies(p Placement, tr *EnsembleTrace) (Placement, []float64, error) {
	filtered := Placement{Name: p.Name}
	var effs []float64
	for i, m := range tr.Members {
		if m.Dropped() {
			continue
		}
		ss, err := core.FromMemberTrace(m, core.ExtractOptions{})
		if err != nil {
			return filtered, nil, err
		}
		e, err := ss.Efficiency()
		if err != nil {
			return filtered, nil, err
		}
		filtered.Members = append(filtered.Members, p.Members[i])
		effs = append(effs, e)
	}
	return filtered, effs, nil
}

// Indicator stage sets (Equations 5-8).
var (
	// StageU is resource usage only.
	StageU = indicators.StageU
	// StageUA adds the placement layer.
	StageUA = indicators.StageUA
	// StageUP adds the provisioning layer.
	StageUP = indicators.StageUP
	// StageUAP is the full indicator P^{U,A,P}.
	StageUAP = indicators.StageUAP
)

// Cori returns a hardware spec modeled after the paper's platform.
func Cori(nodes int) ClusterSpec { return cluster.Cori(nodes) }

// PaperEnsemble builds the paper's workload (stride-800 MD simulations,
// calibrated eigenvalue analyses).
func PaperEnsemble(name string, members, analysesPerSim, steps int) EnsembleSpec {
	return runtime.PaperEnsemble(name, members, analysesPerSim, steps)
}

// SpecForPlacement builds the paper workload shaped to a placement.
func SpecForPlacement(p Placement, steps int) EnsembleSpec {
	return runtime.SpecForPlacement(p, steps)
}

// PaperSteps is the paper's in situ step count (30,000 MD steps, stride
// 800).
const PaperSteps = runtime.PaperSteps

// RunSimulated executes an ensemble on the simulated platform.
func RunSimulated(spec ClusterSpec, p Placement, es EnsembleSpec, opts SimOptions) (*EnsembleTrace, error) {
	return runtime.RunSimulated(spec, p, es, opts)
}

// RunInfo reports how a simulated run was executed (fast path, member
// parallelism, plan reuse, DES event count).
type RunInfo = runtime.RunInfo

// World is the shared immutable state of a campaign: frozen plans plus a
// recycled-environment arena (see SimOptions.World).
type World = runtime.World

// NewWorld returns an empty World.
func NewWorld() *World { return runtime.NewWorld() }

// RunSimulatedInfo is RunSimulated plus execution metadata.
func RunSimulatedInfo(spec ClusterSpec, p Placement, es EnsembleSpec, opts SimOptions) (*EnsembleTrace, RunInfo, error) {
	return runtime.RunSimulatedInfo(spec, p, es, opts)
}

// RunReal executes an ensemble for real on the local machine.
func RunReal(p Placement, opts RealOptions) (*EnsembleTrace, error) {
	return runtime.RunReal(p, opts)
}

// MemberSteadyState extracts a member's steady-state stages from a trace.
func MemberSteadyState(tr *EnsembleTrace, member int) (SteadyState, error) {
	if member < 0 || member >= len(tr.Members) {
		return SteadyState{}, errOutOfRange(member, len(tr.Members))
	}
	return core.FromMemberTrace(tr.Members[member], core.ExtractOptions{})
}

// Efficiencies extracts every member's computational efficiency E_i
// (Equation 3) from a trace.
func Efficiencies(tr *EnsembleTrace) ([]float64, error) {
	return scheduler.Efficiencies(tr)
}

// Objective computes the ensemble objective F over a placement's member
// indicators at the given stage (Equations 5-9).
func Objective(p Placement, efficiencies []float64, stage StageSet) (float64, error) {
	return indicators.Objective(p, efficiencies, stage)
}

// IndicatorsReport evaluates a configuration at every indicator stage.
func IndicatorsReport(p Placement, efficiencies []float64) (IndicatorReport, error) {
	return indicators.FullReport(p, efficiencies)
}

// PlacementIndicator returns CP_i (Equation 6) for a member.
func PlacementIndicator(m Member) (float64, error) { return indicators.CP(m) }

// Built-in configurations of the paper's Tables 2 and 4.
func ConfigCf() Placement                        { return placement.Cf() }
func ConfigCc() Placement                        { return placement.Cc() }
func ConfigC15() Placement                       { return placement.C15() }
func ConfigsTable2() []Placement                 { return placement.ConfigsTable2() }
func ConfigsTable4() []Placement                 { return placement.ConfigsTable4() }
func ConfigByName(name string) (Placement, bool) { return placement.ByName(name) }

// CoreSweep runs the Section 3.4 provisioning sweep: vary the analysis
// core count against a fixed simulation and measure σ̄* and E.
func CoreSweep(spec ClusterSpec, coreCounts []int) ([]SweepPoint, error) {
	return heuristic.CoreSweep(spec,
		MDProfile(0), AnalysisProfile(), coreCounts, heuristic.SweepOptions{})
}

// RecommendCores applies the paper's selection rule to a sweep.
func RecommendCores(points []SweepPoint) (SweepPoint, error) {
	return heuristic.Recommend(points)
}

// SchedulePlacement searches for the placement maximizing F(P^{U,A,P})
// for the given ensemble, exhaustively up to maxNodes nodes.
func SchedulePlacement(spec ClusterSpec, es EnsembleSpec, maxNodes int) (ScheduleResult, error) {
	obj := scheduler.AnalyticObjective(spec, nil, es, indicators.StageUAP)
	return scheduler.Exhaustive(spec, es, maxNodes, obj)
}

// SchedulePlacementGreedy is the polynomial-time variant for larger
// ensembles.
func SchedulePlacementGreedy(spec ClusterSpec, es EnsembleSpec, maxNodes int) (ScheduleResult, error) {
	obj := scheduler.AnalyticObjective(spec, nil, es, indicators.StageUAP)
	return scheduler.GreedyLocalSearch(spec, es, maxNodes, obj)
}
